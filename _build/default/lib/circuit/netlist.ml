type node = int

type mos = {
  m_name : string;
  d : node;
  g : node;
  s : node;
  b : node;
  polarity : Process.polarity;
  w : float;
  l : float;
  mult : float;
}

type device =
  | Resistor of { r_name : string; np : node; nn : node; ohms : float }
  | Capacitor of { c_name : string; np : node; nn : node; farads : float }
  | Vsource of { v_name : string; np : node; nn : node; wave : Stimulus.t; ac_mag : float }
  | Isource of { i_name : string; np : node; nn : node; wave : Stimulus.t; ac_mag : float }
  | Vcvs of { e_name : string; p : node; n : node; cp : node; cn : node; gain : float }
  | Mos of mos
  | Switch of {
      s_name : string;
      np : node;
      nn : node;
      r_on : float;
      r_off : float;
      closed_at : float -> bool;
    }

type t = {
  proc : Process.t;
  names : (string, node) Hashtbl.t;
  mutable node_names : string list; (* reversed *)
  mutable next : int;
  mutable devs : device list; (* reversed *)
  mutable n_branches : int;
  branches : (string, int) Hashtbl.t;
  dev_names : (string, unit) Hashtbl.t;
}

let ground = 0

let create proc =
  let names = Hashtbl.create 32 in
  Hashtbl.replace names "0" ground;
  Hashtbl.replace names "gnd" ground;
  {
    proc;
    names;
    node_names = [ "gnd" ];
    next = 1;
    devs = [];
    n_branches = 0;
    branches = Hashtbl.create 8;
    dev_names = Hashtbl.create 32;
  }

let process t = t.proc

let node t name =
  match Hashtbl.find_opt t.names name with
  | Some n -> n
  | None ->
    let n = t.next in
    t.next <- n + 1;
    Hashtbl.replace t.names name n;
    t.node_names <- name :: t.node_names;
    n

let find_node t name = Hashtbl.find_opt t.names name

let node_name t n =
  let all = Array.of_list (List.rev t.node_names) in
  if n >= 0 && n < Array.length all then all.(n) else Printf.sprintf "#%d" n

let node_index (n : node) : int = n
let node_count t = t.next

let register_name t name =
  if Hashtbl.mem t.dev_names name then
    invalid_arg (Printf.sprintf "Netlist: duplicate device name %S" name);
  Hashtbl.replace t.dev_names name ()

let add t d = t.devs <- d :: t.devs

let resistor t name np nn ohms =
  if ohms <= 0.0 then invalid_arg "Netlist.resistor: non-positive resistance";
  register_name t name;
  add t (Resistor { r_name = name; np; nn; ohms })

let capacitor t name np nn farads =
  if farads <= 0.0 then invalid_arg "Netlist.capacitor: non-positive capacitance";
  register_name t name;
  add t (Capacitor { c_name = name; np; nn; farads })

let new_branch t name =
  let k = t.n_branches in
  t.n_branches <- k + 1;
  Hashtbl.replace t.branches name k

let vsource ?(ac_mag = 0.0) t name np nn wave =
  register_name t name;
  new_branch t name;
  add t (Vsource { v_name = name; np; nn; wave; ac_mag })

let isource ?(ac_mag = 0.0) t name np nn wave =
  register_name t name;
  add t (Isource { i_name = name; np; nn; wave; ac_mag })

let vcvs t name ~p ~n ~cp ~cn ~gain =
  register_name t name;
  new_branch t name;
  add t (Vcvs { e_name = name; p; n; cp; cn; gain })

let mosfet t name ~d ~g ~s ~b polarity ~w ~l ?(mult = 1.0) () =
  if w <= 0.0 || l <= 0.0 then invalid_arg "Netlist.mosfet: non-positive geometry";
  if mult <= 0.0 then invalid_arg "Netlist.mosfet: non-positive multiplier";
  register_name t name;
  add t (Mos { m_name = name; d; g; s; b; polarity; w; l; mult })

let switch t name np nn ~r_on ~r_off ~closed_at =
  if r_on <= 0.0 || r_off <= 0.0 then invalid_arg "Netlist.switch: non-positive resistance";
  register_name t name;
  add t (Switch { s_name = name; np; nn; r_on; r_off; closed_at })

let devices t = List.rev t.devs

let mos_devices t =
  List.filter_map (function Mos m -> Some m | _ -> None) (devices t)

let branch_count t = t.n_branches
let unknown_count t = t.next - 1 + t.n_branches
let branch_index t name = Hashtbl.find t.branches name

let validate t =
  (* every non-ground node must connect to at least two device terminals,
     and the graph of all devices must connect every node to ground *)
  let n = node_count t in
  let adj = Array.make n [] in
  let connect a b =
    adj.(a) <- b :: adj.(a);
    adj.(b) <- a :: adj.(b)
  in
  let terminal_count = Array.make n 0 in
  let touch x = terminal_count.(x) <- terminal_count.(x) + 1 in
  List.iter
    (fun d ->
      match d with
      | Resistor { np; nn; _ }
      | Capacitor { np; nn; _ }
      | Vsource { np; nn; _ }
      | Isource { np; nn; _ }
      | Switch { np; nn; _ } ->
        connect np nn;
        touch np;
        touch nn
      | Vcvs { p; n = nn; cp; cn; _ } ->
        connect p nn;
        touch p;
        touch nn;
        touch cp;
        touch cn
      | Mos { d = dd; g; s; b; _ } ->
        connect dd s;
        connect g s;
        connect dd b;
        touch dd;
        touch g;
        touch s;
        touch b)
    (devices t);
  let visited = Array.make n false in
  let rec dfs x =
    if not visited.(x) then begin
      visited.(x) <- true;
      List.iter dfs adj.(x)
    end
  in
  dfs ground;
  let problems = ref [] in
  for i = 1 to n - 1 do
    if not visited.(i) then
      problems := Printf.sprintf "node %S unreachable from ground" (node_name t i) :: !problems;
    if terminal_count.(i) < 2 then
      problems :=
        Printf.sprintf "node %S has fewer than two connections" (node_name t i)
        :: !problems
  done;
  match !problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " ps)
