(** Transient analysis.

    Fixed-step integration with a Newton solve at every step. The first
    step uses backward Euler to start the capacitor-current history, then
    trapezoidal integration takes over (the standard SPICE pairing:
    A-stable start-up, second-order accuracy afterwards).

    Device capacitances of MOSFETs are not included automatically; the
    switched-capacitor test benches model them with explicit capacitors,
    which keeps the transient behaviour interpretable (see DESIGN.md). *)

type waveforms = {
  times : float array;
  data : float array array;  (** [data.(step).(unknown)] *)
}

val run :
  ?x0:float array ->
  ?max_newton:int ->
  Netlist.t ->
  t_stop:float ->
  dt:float ->
  (waveforms, string) result
(** Simulate from t = 0 to [t_stop]. When [x0] is omitted the initial
    state is the DC operating point at t = 0 (switches in their t = 0
    state). *)

val node_waveform : Netlist.t -> waveforms -> Netlist.node -> (float * float) array
(** Time series of one node voltage. *)

val final_voltage : Netlist.t -> waveforms -> Netlist.node -> float

val settling_time :
  Netlist.t -> waveforms -> Netlist.node -> target:float -> tol:float -> float option
(** Last instant at which the node leaves the [target +- tol] band; [None]
    if it never enters or never leaves it (never settles -> [None] when
    the final value is still outside the band). *)
