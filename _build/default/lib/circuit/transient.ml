module Vec = Adc_numerics.Vec
module Mat = Adc_numerics.Mat
type waveforms = { times : float array; data : float array array }

let run ?x0 ?(max_newton = 60) nl ~t_stop ~dt =
  if dt <= 0.0 || t_stop <= 0.0 then invalid_arg "Transient.run: bad time parameters";
  let x0 =
    match x0 with
    | Some x -> Ok (Vec.copy x)
    | None -> begin
      match Dc.solve ~time:0.0 nl with
      | Ok r -> Ok r.x
      | Error e -> Error ("Transient.run: initial DC failed: " ^ e)
    end
  in
  match x0 with
  | Error e -> Error e
  | Ok x0 ->
    let n_caps = Mna.cap_count nl in
    let n_steps = int_of_float (Float.ceil (t_stop /. dt)) in
    let v_of x node = Mna.node_voltage_of x node in
    (* capacitor history: voltage difference and branch current at the
       previous accepted time point *)
    let cap_v = Array.make n_caps 0.0 in
    let cap_i = Array.make n_caps 0.0 in
    (* initialize cap voltages from x0 *)
    let cap_nodes = Array.make n_caps (0, 0, 0.0) in
    let k = ref 0 in
    List.iter
      (fun d ->
        match d with
        | Netlist.Capacitor { np; nn; farads; _ } ->
          cap_nodes.(!k) <- (np, nn, farads);
          cap_v.(!k) <- v_of x0 np -. v_of x0 nn;
          incr k
        | Netlist.Resistor _ | Netlist.Vsource _ | Netlist.Isource _
        | Netlist.Vcvs _ | Netlist.Mos _ | Netlist.Switch _ -> ())
      (Netlist.devices nl);
    let times = Array.make (n_steps + 1) 0.0 in
    let data = Array.make (n_steps + 1) [||] in
    data.(0) <- Vec.copy x0;
    let x = ref (Vec.copy x0) in
    let error = ref None in
    (* step [si]: solve for the state at time si*dt *)
    let step si =
      let t = float_of_int si *. dt in
      times.(si) <- t;
      let first = si = 1 in
      let companion ~cap_index ~np:_ ~nn:_ ~farads =
        if first then
          (* backward Euler start-up *)
          let geq = farads /. dt in
          { Mna.geq; ieq = -.geq *. cap_v.(cap_index) }
        else
          (* trapezoidal *)
          let geq = 2.0 *. farads /. dt in
          { Mna.geq; ieq = -.((geq *. cap_v.(cap_index)) +. cap_i.(cap_index)) }
      in
      match
        Dc.newton ~max_iter:max_newton ~vstep_limit:3.3 ~x0:!x ~time:t
          ~source_scale:1.0 ~gmin:1e-12
          ~cap_policy:(Mna.Cap_companion companion) nl
      with
      | Error e -> error := Some (Printf.sprintf "Transient.run: t=%.4g: %s" t e)
      | Ok (x', _) ->
        (* update capacitor history *)
        Array.iteri
          (fun ci (np, nn, farads) ->
            let vd = v_of x' np -. v_of x' nn in
            let i_new =
              if first then farads /. dt *. (vd -. cap_v.(ci))
              else (2.0 *. farads /. dt *. (vd -. cap_v.(ci))) -. cap_i.(ci)
            in
            cap_v.(ci) <- vd;
            cap_i.(ci) <- i_new)
          cap_nodes;
        x := x';
        data.(si) <- Vec.copy x'
    in
    let si = ref 1 in
    while !error = None && !si <= n_steps do
      step !si;
      incr si
    done;
    (match !error with
    | Some e -> Error e
    | None -> Ok { times; data })

let node_waveform _nl { times; data } node =
  let idx = Netlist.node_index node in
  Array.mapi
    (fun i t -> (t, if idx = 0 then 0.0 else data.(i).(idx - 1)))
    times

let final_voltage nl w node =
  let wf = node_waveform nl w node in
  snd wf.(Array.length wf - 1)

let settling_time nl w node ~target ~tol =
  let wf = node_waveform nl w node in
  let n = Array.length wf in
  if Float.abs (snd wf.(n - 1) -. target) > tol then None
  else begin
    let rec go i =
      if i < 0 then Some (fst wf.(0))
      else if Float.abs (snd wf.(i) -. target) > tol then
        if i = n - 1 then None else Some (fst wf.(i + 1))
      else go (i - 1)
    in
    go (n - 1)
  end
