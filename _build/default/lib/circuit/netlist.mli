(** Circuit netlists.

    A netlist is built imperatively (SPICE-deck style) and then consumed by
    the DC/AC/transient engines. Nodes are interned by name; node 0 is
    ground ("0" or "gnd"). *)

type node = int
(** An interned circuit node index; 0 is ground. Obtain nodes via {!node}
    or {!ground} rather than synthesizing indices. *)

type mos = {
  m_name : string;
  d : node;
  g : node;
  s : node;
  b : node;
  polarity : Process.polarity;
  w : float;
  l : float;
  mult : float;  (** parallel-device multiplier *)
}

type device =
  | Resistor of { r_name : string; np : node; nn : node; ohms : float }
  | Capacitor of { c_name : string; np : node; nn : node; farads : float }
  | Vsource of { v_name : string; np : node; nn : node; wave : Stimulus.t; ac_mag : float }
  | Isource of { i_name : string; np : node; nn : node; wave : Stimulus.t; ac_mag : float }
  | Vcvs of { e_name : string; p : node; n : node; cp : node; cn : node; gain : float }
  | Mos of mos
  | Switch of {
      s_name : string;
      np : node;
      nn : node;
      r_on : float;
      r_off : float;
      closed_at : float -> bool;
    }

type t
(** A mutable netlist under construction (also the compiled artifact: the
    engines read it directly). *)

val create : Process.t -> t
val process : t -> Process.t

val ground : node
val node : t -> string -> node
(** Intern a node by name (creates it on first use). *)

val node_name : t -> node -> string
val node_index : node -> int
val node_count : t -> int
(** Number of nodes including ground. *)

val find_node : t -> string -> node option

val resistor : t -> string -> node -> node -> float -> unit
val capacitor : t -> string -> node -> node -> float -> unit
val vsource : ?ac_mag:float -> t -> string -> node -> node -> Stimulus.t -> unit
val isource : ?ac_mag:float -> t -> string -> node -> node -> Stimulus.t -> unit
val vcvs : t -> string -> p:node -> n:node -> cp:node -> cn:node -> gain:float -> unit

val mosfet :
  t -> string ->
  d:node -> g:node -> s:node -> b:node ->
  Process.polarity -> w:float -> l:float -> ?mult:float -> unit -> unit

val switch :
  t -> string -> node -> node ->
  r_on:float -> r_off:float -> closed_at:(float -> bool) -> unit

val devices : t -> device list
(** Devices in insertion order. *)

val mos_devices : t -> mos list

val branch_count : t -> int
(** Number of extra MNA unknowns (voltage-source and VCVS branch currents). *)

val unknown_count : t -> int
(** Total MNA unknowns: (nodes - 1) + branches. *)

val branch_index : t -> string -> int
(** MNA branch index (within the branch block) of a named V source/VCVS.
    Raises [Not_found] for unknown names. *)

val validate : t -> (unit, string) result
(** Structural checks: every node reachable from ground through a DC path,
    no duplicate device names, positive element values. *)
