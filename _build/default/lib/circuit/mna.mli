(** Modified nodal analysis: residual/Jacobian assembly.

    Unknown vector layout: indices [0 .. nodes-2] are the voltages of
    nodes [1 .. nodes-1] (ground dropped), followed by one branch current
    per voltage source / VCVS in declaration order.

    Residual convention: [f.(row)] is the sum of currents *leaving* the
    node (or the branch voltage equation), so a solution satisfies
    [f = 0] and Newton solves [J dx = -f]. *)

type cap_companion = {
  geq : float;  (** companion conductance *)
  ieq : float;  (** companion current source, leaving the positive node *)
}

type cap_policy =
  | Cap_open  (** DC: capacitors carry no current *)
  | Cap_companion of (cap_index:int -> np:int -> nn:int -> farads:float -> cap_companion)
      (** Transient: integration-method companion model; [cap_index]
          counts capacitors in declaration order. *)

val node_voltage_of : float array -> int -> float
(** Voltage of a node index given the unknown vector (0 for ground). *)

val assemble :
  Netlist.t ->
  x:float array ->
  time:float ->
  source_scale:float ->
  gmin:float ->
  cap_policy:cap_policy ->
  Adc_numerics.Mat.t * float array
(** Build the Jacobian and residual at the point [x]. *)

val cap_count : Netlist.t -> int
