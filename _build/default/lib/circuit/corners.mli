(** Process corners and temperature scaling.

    Industrial sign-off evaluates every synthesized cell across process
    corners; the paper's NeoCircuit flow does the same internally. We
    model the classic five digital corners by scaling the square-law
    parameters: slow devices have lower mobility and higher threshold,
    fast devices the opposite, with NMOS and PMOS skewed independently
    in the mixed corners. *)

type corner = TT | SS | FF | SF | FS
(** Typical, slow-slow, fast-fast, slow-N/fast-P, fast-N/slow-P. *)

val all : corner list
val to_string : corner -> string

val apply : ?temperature:float -> Process.t -> corner -> Process.t
(** Derive the corner process: +-12% mobility, -+40 mV threshold per
    device polarity, and the requested junction temperature (default
    the nominal 300 K; 398 K is the usual hot sign-off). Temperature
    additionally derates mobility by (T/300)^-1.5 and kT scales the
    noise floor. *)

val describe : Process.t -> string
(** One-line summary (name, kp values, vt values, temperature). *)
