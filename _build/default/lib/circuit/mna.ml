module Vec = Adc_numerics.Vec
module Mat = Adc_numerics.Mat
type cap_companion = { geq : float; ieq : float }

type cap_policy =
  | Cap_open
  | Cap_companion of (cap_index:int -> np:int -> nn:int -> farads:float -> cap_companion)

let node_voltage_of (x : Vec.t) n = if n = 0 then 0.0 else x.(n - 1)

let cap_count nl =
  List.fold_left
    (fun acc d -> match d with Netlist.Capacitor _ -> acc + 1 | _ -> acc)
    0 (Netlist.devices nl)

let assemble nl ~x ~time ~source_scale ~gmin ~cap_policy =
  let nv = Netlist.node_count nl - 1 in
  let n = Netlist.unknown_count nl in
  let jac = Mat.create n n in
  let res = Vec.create n in
  let v node = node_voltage_of x node in
  let row node = node - 1 in
  (* stamp a current i leaving [node] with given partials *)
  let stamp_f node i = if node <> 0 then res.(row node) <- res.(row node) +. i in
  let stamp_j r c g =
    if r <> 0 && c <> 0 then Mat.add_to jac (row r) (row c) g
  in
  let stamp_conductance a b g =
    stamp_j a a g;
    stamp_j b b g;
    stamp_j a b (-.g);
    stamp_j b a (-.g)
  in
  let stamp_resistor_like np nn ohms =
    let g = 1.0 /. ohms in
    let i = g *. (v np -. v nn) in
    stamp_f np i;
    stamp_f nn (-.i);
    stamp_conductance np nn g
  in
  let mos_polarity_params = Process.mos (Netlist.process nl) in
  let cap_idx = ref 0 in
  let stamp_device d =
    match d with
    | Netlist.Resistor { np; nn; ohms; _ } -> stamp_resistor_like np nn ohms
    | Netlist.Switch { np; nn; r_on; r_off; closed_at; _ } ->
      stamp_resistor_like np nn (if closed_at time then r_on else r_off)
    | Netlist.Capacitor { np; nn; farads; _ } -> begin
      let k = !cap_idx in
      incr cap_idx;
      match cap_policy with
      | Cap_open -> ()
      | Cap_companion f ->
        let { geq; ieq } = f ~cap_index:k ~np ~nn ~farads in
        let i = (geq *. (v np -. v nn)) +. ieq in
        stamp_f np i;
        stamp_f nn (-.i);
        stamp_conductance np nn geq
    end
    | Netlist.Isource { np; nn; wave; _ } ->
      let i = source_scale *. Stimulus.value wave time in
      (* positive current flows np -> nn through the source *)
      stamp_f np i;
      stamp_f nn (-.i)
    | Netlist.Vsource { v_name; np; nn; wave; _ } ->
      let bi = nv + Netlist.branch_index nl v_name in
      let ib = x.(bi) in
      stamp_f np ib;
      stamp_f nn (-.ib);
      if np <> 0 then Mat.add_to jac (row np) bi 1.0;
      if nn <> 0 then Mat.add_to jac (row nn) bi (-1.0);
      let vval = source_scale *. Stimulus.value wave time in
      res.(bi) <- res.(bi) +. (v np -. v nn -. vval);
      if np <> 0 then Mat.add_to jac bi (row np) 1.0;
      if nn <> 0 then Mat.add_to jac bi (row nn) (-1.0)
    | Netlist.Vcvs { e_name; p; n = nneg; cp; cn; gain } ->
      let bi = nv + Netlist.branch_index nl e_name in
      let ib = x.(bi) in
      stamp_f p ib;
      stamp_f nneg (-.ib);
      if p <> 0 then Mat.add_to jac (row p) bi 1.0;
      if nneg <> 0 then Mat.add_to jac (row nneg) bi (-1.0);
      res.(bi) <- res.(bi) +. (v p -. v nneg -. (gain *. (v cp -. v cn)));
      if p <> 0 then Mat.add_to jac bi (row p) 1.0;
      if nneg <> 0 then Mat.add_to jac bi (row nneg) (-1.0);
      if cp <> 0 then Mat.add_to jac bi (row cp) (-.gain);
      if cn <> 0 then Mat.add_to jac bi (row cn) gain
    | Netlist.Mos { d; g; s; b; polarity; w; l; mult; _ } ->
      let params = mos_polarity_params polarity in
      let vgs = v g -. v s and vds = v d -. v s and vbs = v b -. v s in
      let e = Mosfet.eval params polarity ~w ~l ~vgs ~vds ~vbs in
      let ids = mult *. e.ids in
      let gm = mult *. e.gm and gds = mult *. e.gds and gmb = mult *. e.gmb in
      stamp_f d ids;
      stamp_f s (-.ids);
      stamp_j d g gm;
      stamp_j d d gds;
      stamp_j d b gmb;
      stamp_j d s (-.(gm +. gds +. gmb));
      stamp_j s g (-.gm);
      stamp_j s d (-.gds);
      stamp_j s b (-.gmb);
      stamp_j s s (gm +. gds +. gmb)
  in
  List.iter stamp_device (Netlist.devices nl);
  (* gmin from every node to ground stabilizes floating subcircuits and
     enables gmin stepping *)
  if gmin > 0.0 then
    for nd = 1 to nv do
      Mat.add_to jac (nd - 1) (nd - 1) gmin;
      res.(nd - 1) <- res.(nd - 1) +. (gmin *. x.(nd - 1))
    done;
  (jac, res)
