(** Synthetic 0.25 um, 3.3 V CMOS process.

    The paper targets a proprietary 0.25 um 3.3 V process; we substitute a
    level-1 (square-law) model with representative public-domain
    parameters. The topology-optimization conclusions depend on scaling
    laws (kT/C vs capacitance, gm/Id vs current, comparator count vs stage
    bits), which a square-law process reproduces faithfully; see
    DESIGN.md section 2. *)

type polarity = Nmos | Pmos

type mos_params = {
  vt0 : float;      (** zero-bias threshold, V (magnitude) *)
  kp : float;       (** transconductance parameter mu*Cox, A/V^2 *)
  lambda_l : float; (** channel-length modulation coefficient * L, V^-1 * m.
                        lambda(L) = lambda_l / L, giving longer channels
                        proportionally higher output resistance. *)
  gamma : float;    (** body-effect coefficient, sqrt(V) *)
  phi : float;      (** 2*phi_F surface potential, V *)
  cox : float;      (** gate-oxide capacitance per area, F/m^2 *)
  cov : float;      (** gate-drain/source overlap cap per width, F/m *)
  cj : float;       (** junction cap per drain/source area, F/m^2 *)
  ldiff : float;    (** drain/source diffusion length, m *)
}

type t = {
  name : string;
  vdd : float;          (** supply voltage, V *)
  temperature : float;  (** Kelvin *)
  nmos : mos_params;
  pmos : mos_params;
  l_min : float;        (** minimum channel length, m *)
  w_min : float;        (** minimum channel width, m *)
  cap_density : float;  (** MiM/poly-poly capacitor density, F/m^2 *)
  cap_matching : float; (** unit-capacitor relative sigma at 1 pF (MiM-class
                            matching, ~0.01%), unitless *)
  c_unit_min : float;   (** smallest practical unit capacitor, F *)
}

val boltzmann : float
(** k = 1.380649e-23 J/K. *)

val kt : t -> float
(** k*T at the process temperature. *)

val c025 : t
(** The synthetic 0.25 um 3.3 V process used throughout the reproduction. *)

val mos : t -> polarity -> mos_params
val lambda_of : mos_params -> l:float -> float
(** Effective channel-length-modulation coefficient at channel length [l]. *)
