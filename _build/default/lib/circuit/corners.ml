type corner = TT | SS | FF | SF | FS

let all = [ TT; SS; FF; SF; FS ]

let to_string = function
  | TT -> "TT"
  | SS -> "SS"
  | FF -> "FF"
  | SF -> "SF"
  | FS -> "FS"

let skew_mos (p : Process.mos_params) ~fast =
  if fast then { p with kp = p.kp *. 1.12; vt0 = p.vt0 -. 0.04 }
  else { p with kp = p.kp *. 0.88; vt0 = p.vt0 +. 0.04 }

let apply ?(temperature = 300.0) (proc : Process.t) corner =
  if temperature <= 0.0 then invalid_arg "Corners.apply: non-positive temperature";
  let nmos_fast, pmos_fast =
    match corner with
    | TT -> (None, None)
    | SS -> (Some false, Some false)
    | FF -> (Some true, Some true)
    | SF -> (Some false, Some true)
    | FS -> (Some true, Some false)
  in
  let skew p = function None -> p | Some fast -> skew_mos p ~fast in
  (* mobility derates with temperature as ~T^-1.5 *)
  let mu_derate = (temperature /. 300.0) ** -1.5 in
  let with_temp (p : Process.mos_params) = { p with kp = p.kp *. mu_derate } in
  {
    proc with
    name =
      Printf.sprintf "%s-%s%s" proc.name (to_string corner)
        (if temperature = 300.0 then ""
         else Printf.sprintf "-%.0fK" temperature);
    temperature;
    nmos = with_temp (skew proc.nmos nmos_fast);
    pmos = with_temp (skew proc.pmos pmos_fast);
  }

let describe (proc : Process.t) =
  Printf.sprintf "%s: KPn %.0f uA/V^2, KPp %.0f uA/V^2, Vtn %.0f mV, Vtp %.0f mV, %.0f K"
    proc.name (proc.nmos.kp *. 1e6) (proc.pmos.kp *. 1e6)
    (proc.nmos.vt0 *. 1e3) (proc.pmos.vt0 *. 1e3) proc.temperature
