type mos_op = {
  name : string;
  polarity : Process.polarity;
  region : Mosfet.region;
  ids : float;
  gm : float;
  gds : float;
  gmb : float;
  caps : Mosfet.caps;
  vgs : float;
  vds : float;
  vbs : float;
  vdsat : float;
  w : float;
  l : float;
  mult : float;
}

type t = { op : Dc.result; mos : mos_op list }

let extract nl (op : Dc.result) =
  let v n = Mna.node_voltage_of op.x n in
  let proc = Netlist.process nl in
  let mos =
    List.map
      (fun (m : Netlist.mos) ->
        let params = Process.mos proc m.polarity in
        let vgs = v m.g -. v m.s and vds = v m.d -. v m.s and vbs = v m.b -. v m.s in
        let e = Mosfet.eval params m.polarity ~w:m.w ~l:m.l ~vgs ~vds ~vbs in
        let caps = Mosfet.capacitances params ~w:(m.w *. m.mult) ~l:m.l e.region in
        {
          name = m.m_name;
          polarity = m.polarity;
          region = e.region;
          ids = m.mult *. e.ids;
          gm = m.mult *. e.gm;
          gds = m.mult *. e.gds;
          gmb = m.mult *. e.gmb;
          caps;
          vgs;
          vds;
          vbs;
          vdsat = Mosfet.vdsat params m.polarity ~vgs ~vbs;
          w = m.w;
          l = m.l;
          mult = m.mult;
        })
      (Netlist.mos_devices nl)
  in
  { op; mos }

let find_mos t name =
  match List.find_opt (fun m -> String.equal m.name name) t.mos with
  | Some m -> m
  | None -> raise Not_found

let total_supply_current nl (op : Dc.result) ~supply =
  Float.abs (Dc.branch_current nl op supply)

let saturation_ok t ~except =
  List.for_all
    (fun m ->
      List.mem m.name except
      ||
      match m.region with
      | Mosfet.Saturation -> true
      | Mosfet.Triode | Mosfet.Cutoff -> false)
    t.mos
