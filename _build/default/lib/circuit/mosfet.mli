(** Level-1 MOSFET device equations.

    Square-law model with channel-length modulation and body effect,
    symmetric in drain/source (negative [vds] swaps the terminals
    internally). PMOS devices are evaluated by polarity reflection.

    Current convention: [ids] is the current flowing into the drain
    terminal and out of the source terminal. For an NMOS in normal
    operation [ids >= 0]; for a PMOS [ids <= 0]. *)

type region = Cutoff | Triode | Saturation

type eval = {
  ids : float;  (** drain current, A *)
  gm : float;   (** d ids / d vgs at the applied bias *)
  gds : float;  (** d ids / d vds *)
  gmb : float;  (** d ids / d vbs *)
  region : region;
}

val eval :
  Process.mos_params ->
  Process.polarity ->
  w:float -> l:float ->
  vgs:float -> vds:float -> vbs:float ->
  eval
(** Evaluate the device at the given terminal-difference voltages. *)

val threshold : Process.mos_params -> Process.polarity -> vbs:float -> float
(** Body-effect-adjusted threshold voltage (signed: negative for PMOS). *)

type caps = { cgs : float; cgd : float; cgb : float; cdb : float; csb : float }

val capacitances :
  Process.mos_params -> w:float -> l:float -> region -> caps
(** Meyer-style region-dependent gate capacitances plus constant junction
    capacitances; used for AC analysis and SFG construction. *)

val vdsat : Process.mos_params -> Process.polarity -> vgs:float -> vbs:float -> float
(** Saturation voltage [vgs - vt] (clamped at 0); magnitude for PMOS. *)
