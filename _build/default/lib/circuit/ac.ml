module Cxm = Adc_numerics.Cxm
type point = { freq : float; x : Complex.t array }

let run ?(switch_time = 0.0) nl (ss : Smallsig.t) ~freqs =
  let nv = Netlist.node_count nl - 1 in
  let n = Netlist.unknown_count nl in
  let mos_table = Hashtbl.create 16 in
  List.iter (fun (m : Smallsig.mos_op) -> Hashtbl.replace mos_table m.name m) ss.mos;
  let solve_at freq =
    let w = 2.0 *. Float.pi *. freq in
    let m = Cxm.create n in
    let b = Array.make n Complex.zero in
    let row node = node - 1 in
    let stamp r c (v : Complex.t) = if r <> 0 && c <> 0 then Cxm.add_to m (row r) (row c) v in
    let stamp_branch_row bi node v = if node <> 0 then Cxm.add_to m bi (row node) v in
    let stamp_node_branch node bi v = if node <> 0 then Cxm.add_to m (row node) bi v in
    let stamp_admittance a bb (y : Complex.t) =
      stamp a a y;
      stamp bb bb y;
      stamp a bb (Complex.neg y);
      stamp bb a (Complex.neg y)
    in
    let real_y g = { Complex.re = g; im = 0.0 } in
    let cap_y c = { Complex.re = 0.0; im = w *. c } in
    let inject node (i : Complex.t) =
      if node <> 0 then b.(row node) <- Complex.add b.(row node) i
    in
    List.iter
      (fun d ->
        match d with
        | Netlist.Resistor { np; nn; ohms; _ } -> stamp_admittance np nn (real_y (1.0 /. ohms))
        | Netlist.Switch { np; nn; r_on; r_off; closed_at; _ } ->
          let r = if closed_at switch_time then r_on else r_off in
          stamp_admittance np nn (real_y (1.0 /. r))
        | Netlist.Capacitor { np; nn; farads; _ } -> stamp_admittance np nn (cap_y farads)
        | Netlist.Isource { np; nn; ac_mag; _ } ->
          (* AC current flows np -> nn through the source: leaves np *)
          inject np { Complex.re = -.ac_mag; im = 0.0 };
          inject nn { Complex.re = ac_mag; im = 0.0 }
        | Netlist.Vsource { v_name; np; nn; ac_mag; _ } ->
          let bi = nv + Netlist.branch_index nl v_name in
          stamp_node_branch np bi Complex.one;
          stamp_node_branch nn bi (Complex.neg Complex.one);
          stamp_branch_row bi np Complex.one;
          stamp_branch_row bi nn (Complex.neg Complex.one);
          b.(bi) <- { Complex.re = ac_mag; im = 0.0 }
        | Netlist.Vcvs { e_name; p; n = nneg; cp; cn; gain } ->
          let bi = nv + Netlist.branch_index nl e_name in
          stamp_node_branch p bi Complex.one;
          stamp_node_branch nneg bi (Complex.neg Complex.one);
          stamp_branch_row bi p Complex.one;
          stamp_branch_row bi nneg (Complex.neg Complex.one);
          stamp_branch_row bi cp (real_y (-.gain));
          stamp_branch_row bi cn (real_y gain)
        | Netlist.Mos { m_name; d = dd; g; s; b = bulk; _ } ->
          let op = Hashtbl.find mos_table m_name in
          (* transconductances: current into drain = gm*vgs + gds*vds + gmb*vbs *)
          let gm = real_y op.gm and gds = real_y op.gds and gmb = real_y op.gmb in
          stamp dd g gm;
          stamp dd s (Complex.neg gm);
          stamp s g (Complex.neg gm);
          stamp s s gm;
          stamp_admittance dd s gds;
          stamp dd bulk gmb;
          stamp dd s (Complex.neg gmb);
          stamp s bulk (Complex.neg gmb);
          stamp s s gmb;
          let c = op.caps in
          stamp_admittance g s (cap_y c.cgs);
          stamp_admittance g dd (cap_y c.cgd);
          stamp_admittance g bulk (cap_y c.cgb);
          stamp_admittance dd bulk (cap_y c.cdb);
          stamp_admittance s bulk (cap_y c.csb))
      (Netlist.devices nl);
    (* small conductance to ground keeps otherwise-floating nodes solvable *)
    for nd = 0 to nv - 1 do
      Cxm.add_to m nd nd (real_y 1e-12)
    done;
    { freq; x = Cxm.solve m b }
  in
  Array.map solve_at freqs

let voltage p node =
  let n = Netlist.node_index node in
  if n = 0 then Complex.zero else p.x.(n - 1)

let transfer points node = Array.map (fun p -> (p.freq, voltage p node)) points

let logspace ~f_start ~f_stop ~points_per_decade =
  if f_start <= 0.0 || f_stop <= f_start then invalid_arg "Ac.logspace";
  let decades = log10 (f_stop /. f_start) in
  let n = Stdlib.max 2 (int_of_float (Float.ceil (decades *. float_of_int points_per_decade)) + 1) in
  Array.init n (fun i ->
      f_start *. (10.0 ** (decades *. float_of_int i /. float_of_int (n - 1))))

let unity_gain_freq tf =
  let n = Array.length tf in
  let rec go i =
    if i >= n then None
    else begin
      let _, z0 = tf.(i - 1) and _, z1 = tf.(i) in
      let m0 = Complex.norm z0 and m1 = Complex.norm z1 in
      if m0 >= 1.0 && m1 < 1.0 then begin
        (* log-log interpolation between the bracketing points *)
        let f0 = fst tf.(i - 1) and f1 = fst tf.(i) in
        let l0 = log m0 and l1 = log m1 in
        let frac = if l0 = l1 then 0.5 else l0 /. (l0 -. l1) in
        Some (f0 *. ((f1 /. f0) ** frac))
      end
      else go (i + 1)
    end
  in
  if n < 2 then None else go 1

let phase_margin_deg tf =
  match unity_gain_freq tf with
  | None -> None
  | Some fu ->
    (* interpolate unwrapped phase at fu *)
    let unwrapped =
      let prev = ref 0.0 in
      let first = ref true in
      Array.map
        (fun (f, z) ->
          let ph = Complex.arg z in
          let ph =
            if !first then begin
              first := false;
              ph
            end
            else begin
              let rec adjust p =
                if p -. !prev > Float.pi then adjust (p -. (2.0 *. Float.pi))
                else if p -. !prev < -.Float.pi then adjust (p +. (2.0 *. Float.pi))
                else p
              in
              adjust ph
            end
          in
          prev := ph;
          (f, ph))
        tf
    in
    let n = Array.length unwrapped in
    let rec interp i =
      if i >= n then snd unwrapped.(n - 1)
      else begin
        let f1, p1 = unwrapped.(i) in
        if f1 >= fu then begin
          let f0, p0 = unwrapped.(i - 1) in
          let frac = log (fu /. f0) /. log (f1 /. f0) in
          p0 +. (frac *. (p1 -. p0))
        end
        else interp (i + 1)
      end
    in
    let phase_at_fu = if n < 2 then snd unwrapped.(0) else interp 1 in
    Some (180.0 +. (phase_at_fu *. 180.0 /. Float.pi))
