lib/circuit/ac.mli: Complex Netlist Smallsig
