lib/circuit/mna.mli: Adc_numerics Netlist
