lib/circuit/ac.ml: Adc_numerics Array Complex Float Hashtbl List Netlist Smallsig Stdlib
