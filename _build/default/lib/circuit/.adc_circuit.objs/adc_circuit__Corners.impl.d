lib/circuit/corners.ml: Printf Process
