lib/circuit/stimulus.mli:
