lib/circuit/dc.mli: Mna Netlist Stdlib
