lib/circuit/stimulus.ml: Array Float
