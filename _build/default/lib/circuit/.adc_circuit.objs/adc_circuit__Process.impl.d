lib/circuit/process.ml:
