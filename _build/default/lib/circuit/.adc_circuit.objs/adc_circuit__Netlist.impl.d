lib/circuit/netlist.ml: Array Hashtbl List Printf Process Stimulus String
