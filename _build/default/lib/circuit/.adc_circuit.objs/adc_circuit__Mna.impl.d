lib/circuit/mna.ml: Adc_numerics Array List Mosfet Netlist Process Stimulus
