lib/circuit/transient.ml: Adc_numerics Array Dc Float List Mna Netlist Printf
