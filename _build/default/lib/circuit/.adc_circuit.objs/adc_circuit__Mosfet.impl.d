lib/circuit/mosfet.ml: Float Process
