lib/circuit/corners.mli: Process
