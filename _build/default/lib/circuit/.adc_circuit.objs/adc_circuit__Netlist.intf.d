lib/circuit/netlist.mli: Process Stimulus
