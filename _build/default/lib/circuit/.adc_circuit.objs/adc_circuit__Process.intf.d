lib/circuit/process.mli:
