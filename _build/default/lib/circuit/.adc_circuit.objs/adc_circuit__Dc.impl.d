lib/circuit/dc.ml: Adc_numerics Array Float Mna Netlist Printf
