lib/circuit/smallsig.mli: Dc Mosfet Netlist Process
