lib/circuit/smallsig.ml: Dc Float List Mna Mosfet Netlist Process String
