test/test_sfg.mli:
