test/test_mdac.mli:
