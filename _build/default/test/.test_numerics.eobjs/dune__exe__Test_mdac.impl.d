test/test_mdac.ml: Adc_circuit Adc_mdac Adc_numerics Adc_sfg Alcotest Array Float List Printf QCheck2 QCheck_alcotest
