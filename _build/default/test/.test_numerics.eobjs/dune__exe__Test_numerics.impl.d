test/test_numerics.ml: Adc_numerics Alcotest Array Complex Float QCheck2 QCheck_alcotest String
