test/test_pipeline.ml: Adc_baseline Adc_mdac Adc_numerics Adc_pipeline Adc_synth Alcotest Float List Printf QCheck2 QCheck_alcotest String
