test/test_synth.ml: Adc_circuit Adc_mdac Adc_numerics Adc_synth Alcotest Array Float List Printf QCheck2 QCheck_alcotest
