test/test_circuit.ml: Adc_circuit Adc_numerics Alcotest Array Complex Float Printf QCheck2 QCheck_alcotest
