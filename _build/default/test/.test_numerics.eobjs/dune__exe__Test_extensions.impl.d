test/test_extensions.ml: Adc_circuit Adc_mdac Adc_pipeline Adc_synth Alcotest Float List Printf String
