test/test_sfg.ml: Adc_circuit Adc_numerics Adc_sfg Alcotest Array Complex Float List Printf QCheck2 QCheck_alcotest String
