(* Tests for the extension modules: process corners, device noise
   analysis, area model, Monte-Carlo yield, Pareto fronts. *)

module Process = Adc_circuit.Process
module Corners = Adc_circuit.Corners
module Netlist = Adc_circuit.Netlist
module Stimulus = Adc_circuit.Stimulus
module Dc = Adc_circuit.Dc
module Smallsig = Adc_circuit.Smallsig
module Noise = Adc_mdac.Noise
module Ota = Adc_mdac.Ota
module Mdac_stage = Adc_mdac.Mdac_stage
module Synthesizer = Adc_synth.Synthesizer
module Corner_check = Adc_synth.Corner_check
module Pareto = Adc_synth.Pareto
module Spec = Adc_pipeline.Spec
module Config = Adc_pipeline.Config
module Area_model = Adc_pipeline.Area_model
module Montecarlo = Adc_pipeline.Montecarlo

let proc = Process.c025

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Corners *)

let test_corner_scaling () =
  let ss = Corners.apply proc Corners.SS in
  let ff = Corners.apply proc Corners.FF in
  Alcotest.(check bool) "SS slower" true (ss.Process.nmos.Process.kp < proc.Process.nmos.Process.kp);
  Alcotest.(check bool) "FF faster" true (ff.Process.nmos.Process.kp > proc.Process.nmos.Process.kp);
  Alcotest.(check bool) "SS higher vt" true (ss.Process.nmos.Process.vt0 > proc.Process.nmos.Process.vt0);
  let sf = Corners.apply proc Corners.SF in
  Alcotest.(check bool) "SF skews N slow" true (sf.Process.nmos.Process.kp < proc.Process.nmos.Process.kp);
  Alcotest.(check bool) "SF skews P fast" true (sf.Process.pmos.Process.kp > proc.Process.pmos.Process.kp)

let test_corner_temperature () =
  let hot = Corners.apply ~temperature:398.0 proc Corners.TT in
  check_close "temperature recorded" 398.0 hot.Process.temperature;
  Alcotest.(check bool) "mobility derated when hot" true
    (hot.Process.nmos.Process.kp < proc.Process.nmos.Process.kp);
  Alcotest.(check bool) "kT grows" true (Process.kt hot > Process.kt proc)

let test_corner_tt_is_identity_at_nominal () =
  let tt = Corners.apply proc Corners.TT in
  check_close "kp unchanged" proc.Process.nmos.Process.kp tt.Process.nmos.Process.kp;
  check_close "vt unchanged" proc.Process.nmos.Process.vt0 tt.Process.nmos.Process.vt0

let test_corner_check_runs () =
  (* a synthesized easy cell evaluated across corners: the nominal corner
     must be feasible; corners report graded violations *)
  let spec = Mdac_stage.default_spec ~m:2 ~accuracy_bits:8 ~fs:40e6 in
  let req = Mdac_stage.requirements proc spec ~c_load_ext:0.2e-12 ~c_in_ratio:0.15 in
  match
    Synthesizer.synthesize
      ~budget:{ Synthesizer.sa_iterations = 60; pattern_evals = 80; space_factor = 1.0 }
      ~seed:3 proc req
  with
  | Error e -> Alcotest.failf "synthesis failed: %s" e
  | Ok sol ->
    let results =
      Corner_check.check ~corners:[ Corners.TT; Corners.SS; Corners.FF ] proc req
        sol.Synthesizer.sizing
    in
    Alcotest.(check int) "three corners plus hot TT" 4 (List.length results);
    let tt = List.hd results in
    Alcotest.(check bool) "nominal corner simulates" true (tt.Corner_check.metrics <> []);
    Alcotest.(check bool) "render output" true
      (String.length (Corner_check.render results) > 0);
    match Corner_check.worst results with
    | Some w -> Alcotest.(check bool) "worst has largest violation" true
        (List.for_all (fun r -> r.Corner_check.violation <= w.Corner_check.violation) results)
    | None -> Alcotest.fail "expected a worst corner"

(* ------------------------------------------------------------------ *)
(* Noise: the kT/C theorem as an end-to-end check *)

let test_noise_ktc_theorem () =
  (* integrated output noise of an RC network is sqrt(kT/C) regardless
     of R: the textbook result, reproduced by the DPI-based analysis *)
  let c = 1e-12 in
  List.iter
    (fun r ->
      let nl = Netlist.create proc in
      let vin = Netlist.node nl "in" and out = Netlist.node nl "out" in
      Netlist.vsource nl ~ac_mag:1.0 "vs" vin Netlist.ground (Stimulus.Dc 0.0);
      Netlist.resistor nl "r" vin out r;
      Netlist.capacitor nl "c" out Netlist.ground c;
      let dc = match Dc.solve nl with Ok x -> x | Error e -> Alcotest.failf "dc: %s" e in
      let ss = Smallsig.extract nl dc in
      match Noise.analyze ~f_lo:1.0 ~f_hi:1e12 ~points_per_decade:20 nl ss ~out with
      | Error e -> Alcotest.failf "noise: %s" e
      | Ok report ->
        let expected = sqrt (Process.kt proc /. c) in
        check_close ~eps:0.03
          (Printf.sprintf "kT/C at R=%.0f" r)
          expected report.Noise.v_out_rms)
    [ 100.0; 1000.0; 10000.0 ]

let test_noise_ota_contributions () =
  let z = Ota.default_sizing in
  let p = Ota.build proc z in
  match Dc.solve p.Ota.nl with
  | Error e -> Alcotest.failf "dc: %s" e
  | Ok dc ->
    let ss = Smallsig.extract p.Ota.nl dc in
    (match Noise.analyze p.Ota.nl ss ~out:p.Ota.out with
    | Error e -> Alcotest.failf "noise: %s" e
    | Ok report ->
      Alcotest.(check bool) "positive output noise" true (report.Noise.v_out_rms > 0.0);
      Alcotest.(check bool) "input-referred below output when gain > 1" true
        (report.Noise.v_in_rms < report.Noise.v_out_rms);
      Alcotest.(check bool) "input noise in the uV..mV decade" true
        (report.Noise.v_in_rms > 1e-7 && report.Noise.v_in_rms < 1e-2);
      (* contributions sorted and consistent with the total *)
      let sq = List.fold_left (fun a (c : Noise.contribution) ->
          a +. (c.Noise.v_out_rms ** 2.0)) 0.0 report.Noise.contributions in
      check_close ~eps:1e-6 "contributions sum to total"
        report.Noise.v_out_rms (sqrt sq);
      match report.Noise.contributions with
      | first :: rest ->
        Alcotest.(check bool) "sorted descending" true
          (List.for_all (fun (c : Noise.contribution) ->
               c.Noise.v_out_rms <= first.Noise.v_out_rms) rest)
      | [] -> Alcotest.fail "expected contributions")

(* ------------------------------------------------------------------ *)
(* Area model *)

let test_area_positive_and_caps_dominated () =
  let spec = Spec.paper_case ~k:13 in
  let s = Area_model.stage spec { Spec.m = 4; input_bits = 13 } in
  Alcotest.(check bool) "positive" true (s.Area_model.a_total > 0.0);
  Alcotest.(check bool) "front stage is capacitor-dominated" true
    (s.Area_model.a_caps > s.Area_model.a_comparators)

let test_area_rank_sorted () =
  let spec = Spec.paper_case ~k:13 in
  let ranked =
    Area_model.rank spec (Config.enumerate_leading ~k:13 ~backend_bits:7)
  in
  let rec sorted = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) ->
      a.Area_model.total <= b.Area_model.total && sorted rest
  in
  Alcotest.(check bool) "ascending area" true (sorted ranked)

let test_area_monotonicity_argument () =
  (* the paper's justification for m_i >= m_(i+1): putting the high-
     resolution stage late costs area *)
  let spec = Spec.paper_case ~k:13 in
  let (fwd, a_fwd), (rev, a_rev) = Area_model.monotonicity_argument spec ~k:13 in
  Alcotest.(check bool) "reversed config differs" true (fwd <> rev);
  Alcotest.(check bool)
    (Printf.sprintf "reversed (%s) uses more area than %s" (Config.to_string rev)
       (Config.to_string fwd))
    true (a_rev > a_fwd)

(* ------------------------------------------------------------------ *)
(* Monte-Carlo *)

let test_montecarlo_small_offsets_full_yield () =
  let spec = Spec.paper_case ~k:10 in
  let report = Montecarlo.run ~trials:25 ~seed:3 spec (Config.of_string "3-2") in
  Alcotest.(check bool)
    (Printf.sprintf "yield %.2f above 0.9 inside the budget" report.Montecarlo.yield)
    true
    (report.Montecarlo.yield > 0.9);
  Alcotest.(check bool) "enob stats sane" true
    (report.Montecarlo.enob_min <= report.Montecarlo.enob_mean
    && report.Montecarlo.enob_p05 <= report.Montecarlo.enob_mean)

let test_montecarlo_sweep_knee () =
  (* beyond the redundancy budget the yield must collapse *)
  let spec = Spec.paper_case ~k:10 in
  let budget = Adc_mdac.Comparator.offset_budget ~vref_pp:spec.Spec.vref_pp ~m:3 in
  let sweep =
    Montecarlo.offset_sweep ~trials:20 ~seed:5 spec (Config.of_string "3-2")
      ~sigmas:[ budget /. 8.0; budget *. 1.5 ]
  in
  match sweep with
  | [ (_, small); (_, large) ] ->
    Alcotest.(check bool)
      (Printf.sprintf "yield falls from %.2f to %.2f" small.Montecarlo.yield
         large.Montecarlo.yield)
      true
      (large.Montecarlo.yield < small.Montecarlo.yield)
  | _ -> Alcotest.fail "expected two sweep points"

(* ------------------------------------------------------------------ *)
(* Pareto *)

let test_pareto_front_monotone () =
  let spec = Mdac_stage.default_spec ~m:2 ~accuracy_bits:8 ~fs:40e6 in
  let req = Mdac_stage.requirements proc spec ~c_load_ext:0.2e-12 ~c_in_ratio:0.15 in
  let points =
    Pareto.sweep
      ~budget:{ Synthesizer.sa_iterations = 0; pattern_evals = 150; space_factor = 1.0 }
      proc req ~gbw_multipliers:[ 0.6; 1.0; 1.8 ]
  in
  Alcotest.(check int) "three points" 3 (List.length points);
  let front = Pareto.front points in
  Alcotest.(check bool) "front non-empty" true (front <> []);
  (* along the front, more bandwidth must cost at least as much power *)
  let rec monotone = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) ->
      a.Pareto.gbw_target_hz <= b.Pareto.gbw_target_hz
      && a.Pareto.power <= b.Pareto.power && monotone rest
  in
  Alcotest.(check bool) "front monotone" true (monotone front);
  Alcotest.(check bool) "render" true (String.length (Pareto.render front) > 0)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "extensions"
    [
      ( "corners",
        [
          quick "scaling" test_corner_scaling;
          quick "temperature" test_corner_temperature;
          quick "tt identity" test_corner_tt_is_identity_at_nominal;
          slow "corner check" test_corner_check_runs;
        ] );
      ( "noise",
        [
          quick "kT/C theorem" test_noise_ktc_theorem;
          quick "ota contributions" test_noise_ota_contributions;
        ] );
      ( "area",
        [
          quick "positive and caps dominated" test_area_positive_and_caps_dominated;
          quick "rank sorted" test_area_rank_sorted;
          quick "monotonicity argument" test_area_monotonicity_argument;
        ] );
      ( "montecarlo",
        [
          slow "full yield inside budget" test_montecarlo_small_offsets_full_yield;
          slow "yield knee" test_montecarlo_sweep_knee;
        ] );
      ("pareto", [ slow "front monotone" test_pareto_front_monotone ]);
    ]
