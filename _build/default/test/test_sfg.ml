(* Tests for the symbolic DPI/SFG layer. The strongest checks cross-validate
   Mason's rule on DPI-derived graphs against the independent complex-MNA AC
   engine on the same netlist. *)

module Expr = Adc_sfg.Expr
module Ratfun = Adc_sfg.Ratfun
module Sgraph = Adc_sfg.Sgraph
module Mason = Adc_sfg.Mason
module Dpi = Adc_sfg.Dpi
module Analysis = Adc_sfg.Analysis
module Poly = Adc_numerics.Poly
module Process = Adc_circuit.Process
module Netlist = Adc_circuit.Netlist
module Stimulus = Adc_circuit.Stimulus
module Dc = Adc_circuit.Dc
module Smallsig = Adc_circuit.Smallsig
module Ac = Adc_circuit.Ac

let proc = Process.c025

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Expr *)

let test_expr_simplify () =
  let e = Expr.(var "a" + const 0.0) in
  Alcotest.(check bool) "x+0 = x" true (Expr.equal e (Expr.var "a"));
  let e = Expr.(const 2.0 * const 3.0) in
  Alcotest.(check bool) "const fold" true (Expr.equal e (Expr.const 6.0));
  let e = Expr.(var "a" * const 0.0) in
  Alcotest.(check bool) "x*0 = 0" true (Expr.equal e Expr.zero);
  let e = Expr.(neg (neg (var "a"))) in
  Alcotest.(check bool) "--x = x" true (Expr.equal e (Expr.var "a"))

let test_expr_eval () =
  let env = function "a" -> 2.0 | "b" -> 3.0 | _ -> raise Not_found in
  let e = Expr.(var "a" * (var "b" + const 1.0)) in
  check_close "2*(3+1)" 8.0 (Expr.eval e env);
  let e = Expr.(pow (var "a") 3 / var "b") in
  check_close "8/3" (8.0 /. 3.0) (Expr.eval e env)

let test_expr_vars () =
  let e = Expr.(var "gm" * var "ro" / (var "gm" + s)) in
  Alcotest.(check (list string)) "vars" [ "gm"; "ro"; "s" ] (Expr.vars e)

let test_expr_to_string_round () =
  let e = Expr.(var "gm" / (var "g" + (s * var "c"))) in
  let str = Expr.to_string e in
  Alcotest.(check bool) "mentions gm" true
    (String.length str > 0 && String.length str < 200)

(* ------------------------------------------------------------------ *)
(* Ratfun *)

let test_ratfun_arith () =
  (* 1/(s+1) + 1/(s+2) = (2s+3)/((s+1)(s+2)) *)
  let a = Ratfun.make Poly.one (Poly.of_coeffs [| 1.0; 1.0 |]) in
  let b = Ratfun.make Poly.one (Poly.of_coeffs [| 2.0; 1.0 |]) in
  let sum = Ratfun.add a b in
  let z = Ratfun.eval sum { Complex.re = 1.0; im = 0.0 } in
  check_close "value at s=1" ((1.0 /. 2.0) +. (1.0 /. 3.0)) z.Complex.re

let test_ratfun_reduce () =
  (* (s+1)(s+2) / (s+1)(s+3) reduces to (s+2)/(s+3) *)
  let num = Poly.mul (Poly.of_coeffs [| 1.0; 1.0 |]) (Poly.of_coeffs [| 2.0; 1.0 |]) in
  let den = Poly.mul (Poly.of_coeffs [| 1.0; 1.0 |]) (Poly.of_coeffs [| 3.0; 1.0 |]) in
  let r = Ratfun.reduce (Ratfun.make num den) in
  Alcotest.(check int) "num degree" 1 (Poly.degree r.Ratfun.num);
  Alcotest.(check int) "den degree" 1 (Poly.degree r.Ratfun.den);
  check_close ~eps:1e-6 "dc gain preserved" (2.0 /. 3.0) (Ratfun.dc_gain r)

let test_ratfun_of_expr () =
  (* gm/(g + s c): dc gain gm/g, pole at -g/c *)
  let e = Expr.(var "gm" / (var "g" + (s * var "c"))) in
  let env = function
    | "gm" -> 1e-3
    | "g" -> 1e-4
    | "c" -> 1e-12
    | _ -> raise Not_found
  in
  let r = Ratfun.of_expr e ~env in
  check_close ~eps:1e-9 "dc gain" 10.0 (Ratfun.dc_gain r);
  let poles = Ratfun.poles r in
  Alcotest.(check int) "one pole" 1 (Array.length poles);
  check_close ~eps:1e-6 "pole location" (-1e8) poles.(0).Complex.re

let test_ratfun_eval_jw () =
  let r = Ratfun.make Poly.one (Poly.of_coeffs [| 1.0; 1.0 /. (2.0 *. Float.pi) |]) in
  (* pole at f = 1 Hz *)
  check_close ~eps:1e-9 "half-power at pole" (1.0 /. sqrt 2.0)
    (Complex.norm (Ratfun.eval_jw r 1.0))

(* ------------------------------------------------------------------ *)
(* Mason *)

let test_mason_single_loop () =
  (* x -G-> y with feedback y -(-H)-> x : T = G/(1+GH) *)
  let g = Sgraph.create () in
  let x = Sgraph.add_node g "x" and y = Sgraph.add_node g "y" in
  Sgraph.add_edge g x y (Expr.var "G");
  Sgraph.add_edge g y x (Expr.neg (Expr.var "H"));
  let t = Mason.transfer g ~src:x ~dst:y in
  let env = function "G" -> 10.0 | "H" -> 0.4 | _ -> raise Not_found in
  check_close ~eps:1e-12 "feedback gain" (10.0 /. 5.0) (Expr.eval t env)

let test_mason_cascade () =
  let g = Sgraph.create () in
  let a = Sgraph.add_node g "a" and b = Sgraph.add_node g "b" and c = Sgraph.add_node g "c" in
  Sgraph.add_edge g a b (Expr.const 3.0);
  Sgraph.add_edge g b c (Expr.const 4.0);
  let t = Mason.transfer g ~src:a ~dst:c in
  check_close "cascade 3*4" 12.0 (Expr.eval t (fun _ -> raise Not_found))

let test_mason_two_nontouching_loops () =
  (* path a->b->c->d with self-loops on b and d:
     Delta = 1 - (L1 + L2) + L1 L2; the path touches both loops so the
     cofactor is 1: T = P / Delta *)
  let g = Sgraph.create () in
  let a = Sgraph.add_node g "a" and b = Sgraph.add_node g "b" in
  let c = Sgraph.add_node g "c" and d = Sgraph.add_node g "d" in
  Sgraph.add_edge g a b (Expr.const 2.0);
  Sgraph.add_edge g b c (Expr.const 3.0);
  Sgraph.add_edge g c d (Expr.const 5.0);
  Sgraph.add_edge g b b (Expr.var "L1");
  Sgraph.add_edge g d d (Expr.var "L2");
  let t = Mason.transfer g ~src:a ~dst:d in
  let env = function "L1" -> 0.25 | "L2" -> 0.5 | _ -> raise Not_found in
  let delta = 1.0 -. (0.25 +. 0.5) +. (0.25 *. 0.5) in
  check_close ~eps:1e-12 "two-loop mason" (30.0 /. delta) (Expr.eval t env)

let test_mason_cofactor () =
  (* two parallel paths a->b->d (through a loop-free branch) and a->c->d
     where c has a self-loop not touching path 1:
     T = P1*(1 - L) / (1 - L) + P2 * 1 / (1 - L) -- computed explicitly *)
  let g = Sgraph.create () in
  let a = Sgraph.add_node g "a" and b = Sgraph.add_node g "b" in
  let c = Sgraph.add_node g "c" and d = Sgraph.add_node g "d" in
  Sgraph.add_edge g a b (Expr.const 2.0);
  Sgraph.add_edge g b d (Expr.const 3.0);
  Sgraph.add_edge g a c (Expr.const 5.0);
  Sgraph.add_edge g c d (Expr.const 7.0);
  Sgraph.add_edge g c c (Expr.var "L");
  let t = Mason.transfer g ~src:a ~dst:d in
  let l = 0.2 in
  let env = function "L" -> l | _ -> raise Not_found in
  (* path a-b-d does not touch loop at c: cofactor (1-L); path a-c-d touches it *)
  let expected = ((6.0 *. (1.0 -. l)) +. 35.0) /. (1.0 -. l) in
  check_close ~eps:1e-12 "cofactor" expected (Expr.eval t env)

let test_mason_no_path () =
  let g = Sgraph.create () in
  let a = Sgraph.add_node g "a" and b = Sgraph.add_node g "b" in
  Sgraph.add_edge g b a (Expr.const 1.0);
  let t = Mason.transfer g ~src:a ~dst:b in
  Alcotest.(check bool) "zero transfer" true (Expr.equal t Expr.zero)

let test_mason_report_counts () =
  let g = Sgraph.create () in
  let a = Sgraph.add_node g "a" and b = Sgraph.add_node g "b" in
  Sgraph.add_edge g a b (Expr.const 1.0);
  Sgraph.add_edge g b b (Expr.const 0.5);
  let r = Mason.transfer_report g ~src:a ~dst:b in
  Alcotest.(check int) "paths" 1 r.Mason.n_paths;
  Alcotest.(check int) "loops" 1 r.Mason.n_loops

let test_sgraph_parallel_edges_merge () =
  let g = Sgraph.create () in
  let a = Sgraph.add_node g "a" and b = Sgraph.add_node g "b" in
  Sgraph.add_edge g a b (Expr.const 2.0);
  Sgraph.add_edge g a b (Expr.const 3.0);
  Alcotest.(check int) "merged into one edge" 1 (Array.length (Sgraph.edges g));
  let t = Mason.transfer g ~src:a ~dst:b in
  check_close "summed gain" 5.0 (Expr.eval t (fun _ -> raise Not_found))

(* ------------------------------------------------------------------ *)
(* DPI vs analytic and vs the AC engine *)

let rc_netlist () =
  let nl = Netlist.create proc in
  let vin = Netlist.node nl "in" and out = Netlist.node nl "out" in
  Netlist.vsource nl ~ac_mag:1.0 "vs" vin Netlist.ground (Stimulus.Dc 0.0);
  Netlist.resistor nl "r" vin out 1000.0;
  Netlist.capacitor nl "c" out Netlist.ground 1e-9;
  (nl, vin, out)

let test_dpi_rc_lowpass () =
  let nl, _vin, out = rc_netlist () in
  let dc = match Dc.solve nl with Ok r -> r | Error e -> Alcotest.failf "dc: %s" e in
  let ss = Smallsig.extract nl dc in
  let dpi = Dpi.build nl ss in
  let h = Dpi.numeric_transfer_to dpi out in
  let fc = 1.0 /. (2.0 *. Float.pi *. 1000.0 *. 1e-9) in
  check_close ~eps:1e-9 "dc gain 1" 1.0 (Ratfun.dc_gain h);
  check_close ~eps:1e-9 "-3dB at fc" (1.0 /. sqrt 2.0) (Complex.norm (Ratfun.eval_jw h fc))

let test_dpi_symbolic_form () =
  let nl, _vin, out = rc_netlist () in
  let dc = match Dc.solve nl with Ok r -> r | Error e -> Alcotest.failf "dc: %s" e in
  let ss = Smallsig.extract nl dc in
  let dpi = Dpi.build nl ss in
  let t = Dpi.transfer_to dpi out in
  (* symbolic TF references the resistor conductance and the capacitor *)
  let vs = Expr.vars t in
  Alcotest.(check bool) "references g_r" true (List.mem "g_r" vs);
  Alcotest.(check bool) "references c_c" true (List.mem "c_c" vs);
  Alcotest.(check bool) "references s" true (List.mem "s" vs)

let common_source () =
  let nl = Netlist.create proc in
  let vdd = Netlist.node nl "vdd" and out = Netlist.node nl "out" and g = Netlist.node nl "g" in
  Netlist.vsource nl "vdd_src" vdd Netlist.ground (Stimulus.Dc 3.3);
  Netlist.vsource nl ~ac_mag:1.0 "vg" g Netlist.ground (Stimulus.Dc 1.0);
  Netlist.resistor nl "rd" vdd out 5000.0;
  Netlist.capacitor nl "cl" out Netlist.ground 1e-12;
  Netlist.mosfet nl "m1" ~d:out ~g ~s:Netlist.ground ~b:Netlist.ground Process.Nmos
    ~w:10e-6 ~l:1e-6 ();
  (nl, out)

let test_dpi_matches_ac_engine () =
  let nl, out = common_source () in
  let dc = match Dc.solve nl with Ok r -> r | Error e -> Alcotest.failf "dc: %s" e in
  let ss = Smallsig.extract nl dc in
  let dpi = Dpi.build nl ss in
  let h = Dpi.numeric_transfer_to dpi out in
  let freqs = [| 1e3; 1e6; 1e8; 1e9 |] in
  let pts = Ac.run nl ss ~freqs in
  Array.iteri
    (fun i f ->
      let via_ac = Ac.voltage pts.(i) out in
      let via_dpi = Ratfun.eval_jw h f in
      check_close ~eps:1e-3
        (Printf.sprintf "magnitude at %.0g Hz" f)
        (Complex.norm via_ac) (Complex.norm via_dpi);
      check_close ~eps:1e-2
        (Printf.sprintf "phase at %.0g Hz" f)
        (Complex.arg via_ac) (Complex.arg via_dpi))
    freqs

let test_dpi_rejects_vcvs () =
  let nl = Netlist.create proc in
  let a = Netlist.node nl "a" and b = Netlist.node nl "b" in
  Netlist.vsource nl ~ac_mag:1.0 "vs" a Netlist.ground (Stimulus.Dc 0.0);
  Netlist.vcvs nl "e1" ~p:b ~n:Netlist.ground ~cp:a ~cn:Netlist.ground ~gain:2.0;
  Netlist.resistor nl "r" a b 100.0;
  let dc = match Dc.solve nl with Ok r -> r | Error e -> Alcotest.failf "dc: %s" e in
  let ss = Smallsig.extract nl dc in
  Alcotest.(check bool) "unsupported" true
    (try
       ignore (Dpi.build nl ss);
       false
     with Dpi.Unsupported _ -> true)

(* ------------------------------------------------------------------ *)
(* Analysis *)

let single_pole ~gain ~pole_hz =
  (* H(s) = gain / (1 + s/(2 pi fp)) *)
  Ratfun.make (Poly.constant gain)
    (Poly.of_coeffs [| 1.0; 1.0 /. (2.0 *. Float.pi *. pole_hz) |])

let test_analysis_single_pole () =
  let h = single_pole ~gain:1000.0 ~pole_hz:1e3 in
  let spec = Analysis.characterize h in
  check_close ~eps:1e-9 "dc gain" 1000.0 spec.Analysis.dc_gain;
  Alcotest.(check int) "one pole" 1 (Array.length spec.Analysis.poles);
  check_close ~eps:1e-6 "pole magnitude" (2.0 *. Float.pi *. 1e3)
    (Complex.norm spec.Analysis.poles.(0));
  (match spec.Analysis.unity_gain_hz with
  | Some fu -> check_close ~eps:1e-3 "unity gain ~ gain*fp" 1e6 fu
  | None -> Alcotest.fail "expected unity crossing");
  (match spec.Analysis.phase_margin_deg with
  | Some pm -> check_close ~eps:2e-2 "pm ~ 90" 90.0 pm
  | None -> Alcotest.fail "expected pm");
  (match spec.Analysis.bandwidth_3db_hz with
  | Some bw -> check_close ~eps:1e-3 "bandwidth" 1e3 bw
  | None -> Alcotest.fail "expected bandwidth");
  Alcotest.(check bool) "stable" true (Analysis.is_stable spec)

let test_analysis_two_pole_pm () =
  (* poles at 1 kHz and 1 MHz with dc gain 1000: unity crossing near 1 MHz
     where the second pole contributes ~45 degrees of phase lag *)
  let p1 = Poly.of_coeffs [| 1.0; 1.0 /. (2.0 *. Float.pi *. 1e3) |] in
  let p2 = Poly.of_coeffs [| 1.0; 1.0 /. (2.0 *. Float.pi *. 1e6) |] in
  let h = Ratfun.make (Poly.constant 1000.0) (Poly.mul p1 p2) in
  let spec = Analysis.characterize h in
  match spec.Analysis.phase_margin_deg with
  | Some pm ->
    Alcotest.(check bool) "pm between 30 and 60" true (pm > 30.0 && pm < 60.0)
  | None -> Alcotest.fail "expected pm"

let test_analysis_step_response () =
  let tau = 1.0 /. (2.0 *. Float.pi *. 1e3) in
  let h = single_pole ~gain:2.0 ~pole_hz:1e3 in
  check_close ~eps:1e-6 "step at tau" (2.0 *. (1.0 -. exp (-1.0)))
    (Analysis.step_response h ~t:tau);
  check_close ~eps:1e-6 "step at 5 tau" (2.0 *. (1.0 -. exp (-5.0)))
    (Analysis.step_response h ~t:(5.0 *. tau))

let test_analysis_settling () =
  let tau = 1.0 /. (2.0 *. Float.pi *. 1e3) in
  let h = single_pole ~gain:1.0 ~pole_hz:1e3 in
  match Analysis.linear_settling_time h ~tol:0.01 with
  | Some t -> check_close ~eps:0.05 "1% settling = 4.6 tau" (4.6 *. tau) t
  | None -> Alcotest.fail "expected settling"

let test_analysis_unstable () =
  (* right-half-plane pole *)
  let h = Ratfun.make Poly.one (Poly.of_coeffs [| -1.0; 1.0 |]) in
  let spec = Analysis.characterize h in
  Alcotest.(check bool) "unstable" false (Analysis.is_stable spec);
  Alcotest.(check bool) "no settling" true
    (Analysis.linear_settling_time h ~tol:0.01 = None)

(* ------------------------------------------------------------------ *)
(* additional structural coverage *)

let test_sgraph_cycle_enumeration () =
  (* triangle a->b->c->a plus self-loop on b: two simple cycles *)
  let g = Sgraph.create () in
  let a = Sgraph.add_node g "a" and b = Sgraph.add_node g "b" and c = Sgraph.add_node g "c" in
  Sgraph.add_edge g a b (Expr.const 1.0);
  Sgraph.add_edge g b c (Expr.const 1.0);
  Sgraph.add_edge g c a (Expr.const 1.0);
  Sgraph.add_edge g b b (Expr.const 0.5);
  Alcotest.(check int) "two cycles" 2 (List.length (Sgraph.simple_cycles g))

let test_sgraph_paths_multiple () =
  (* two disjoint routes a->d *)
  let g = Sgraph.create () in
  let a = Sgraph.add_node g "a" and b = Sgraph.add_node g "b" in
  let c = Sgraph.add_node g "c" and d = Sgraph.add_node g "d" in
  Sgraph.add_edge g a b (Expr.const 1.0);
  Sgraph.add_edge g b d (Expr.const 1.0);
  Sgraph.add_edge g a c (Expr.const 1.0);
  Sgraph.add_edge g c d (Expr.const 1.0);
  Alcotest.(check int) "two forward paths" 2
    (List.length (Sgraph.simple_paths g ~src:a ~dst:d))

let test_analysis_second_order_step () =
  (* critically-ish damped two-pole: step response must be monotone-ish
     and reach the DC gain *)
  let p1 = Poly.of_coeffs [| 1.0; 1.0 /. (2.0 *. Float.pi *. 1e4) |] in
  let p2 = Poly.of_coeffs [| 1.0; 1.0 /. (2.0 *. Float.pi *. 3e4) |] in
  let h = Ratfun.make (Poly.constant 5.0) (Poly.mul p1 p2) in
  check_close ~eps:1e-3 "asymptote is the dc gain" 5.0
    (Analysis.step_response h ~t:1e-2);
  Alcotest.(check bool) "starts near zero" true
    (Float.abs (Analysis.step_response h ~t:1e-9) < 0.05);
  (match Analysis.linear_settling_time h ~tol:0.01 with
  | Some t -> Alcotest.(check bool) "settles in finite time" true (t > 0.0 && t < 1e-2)
  | None -> Alcotest.fail "expected settling")

let test_ratfun_scale_and_neg () =
  let h = Ratfun.make (Poly.constant 2.0) (Poly.of_coeffs [| 1.0; 1.0 |]) in
  check_close "scale" 6.0 (Ratfun.dc_gain (Ratfun.scale 3.0 h));
  check_close "neg" (-2.0) (Ratfun.dc_gain (Ratfun.neg h));
  check_close "sub self is zero" 0.0 (Ratfun.dc_gain (Ratfun.sub h h))

let test_expr_pow_and_division_by_zero () =
  let env = function "x" -> 2.0 | _ -> raise Not_found in
  check_close "pow" 8.0 (Expr.eval (Expr.pow (Expr.var "x") 3) env);
  Alcotest.check_raises "division by zero" Division_by_zero (fun () ->
      ignore (Expr.eval Expr.(var "x" / const 0.0) env))

let prop_mason_cascade_of_random_gains =
  QCheck2.Test.make ~name:"mason on a loop-free cascade multiplies gains" ~count:100
    QCheck2.Gen.(list_size (int_range 1 6) (float_range 0.5 2.0))
    (fun gains ->
      let g = Sgraph.create () in
      let nodes =
        List.mapi (fun i _ -> Sgraph.add_node g (Printf.sprintf "n%d" i)) (() :: List.map ignore gains)
      in
      List.iteri
        (fun i gain ->
          Sgraph.add_edge g (List.nth nodes i) (List.nth nodes (i + 1)) (Expr.const gain))
        gains;
      let t = Mason.transfer g ~src:(List.hd nodes) ~dst:(List.nth nodes (List.length gains)) in
      let expected = List.fold_left ( *. ) 1.0 gains in
      Float.abs (Expr.eval t (fun _ -> raise Not_found) -. expected)
      < 1e-9 *. (1.0 +. expected))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "sfg"
    [
      ( "expr",
        [
          quick "simplify" test_expr_simplify;
          quick "eval" test_expr_eval;
          quick "vars" test_expr_vars;
          quick "to_string" test_expr_to_string_round;
        ] );
      ( "ratfun",
        [
          quick "arith" test_ratfun_arith;
          quick "reduce" test_ratfun_reduce;
          quick "of_expr" test_ratfun_of_expr;
          quick "eval_jw" test_ratfun_eval_jw;
        ] );
      ( "mason",
        [
          quick "single loop" test_mason_single_loop;
          quick "cascade" test_mason_cascade;
          quick "non-touching loops" test_mason_two_nontouching_loops;
          quick "cofactor" test_mason_cofactor;
          quick "no path" test_mason_no_path;
          quick "report counts" test_mason_report_counts;
          quick "parallel edge merge" test_sgraph_parallel_edges_merge;
        ] );
      ( "dpi",
        [
          quick "rc lowpass" test_dpi_rc_lowpass;
          quick "symbolic form" test_dpi_symbolic_form;
          quick "matches ac engine" test_dpi_matches_ac_engine;
          quick "rejects vcvs" test_dpi_rejects_vcvs;
        ] );
      ( "structure",
        [
          quick "cycle enumeration" test_sgraph_cycle_enumeration;
          quick "multiple paths" test_sgraph_paths_multiple;
          quick "second-order step" test_analysis_second_order_step;
          quick "ratfun scale/neg" test_ratfun_scale_and_neg;
          quick "expr pow and div0" test_expr_pow_and_division_by_zero;
          QCheck_alcotest.to_alcotest prop_mason_cascade_of_random_gains;
        ] );
      ( "analysis",
        [
          quick "single pole" test_analysis_single_pole;
          quick "two pole pm" test_analysis_two_pole_pm;
          quick "step response" test_analysis_step_response;
          quick "settling" test_analysis_settling;
          quick "unstable" test_analysis_unstable;
        ] );
    ]
