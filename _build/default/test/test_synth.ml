(* Tests for the NeoCircuit-substitute synthesis engine: design spaces,
   constraints, the three optimizer kernels, and the OTA synthesis flow. *)

module Rng = Adc_numerics.Rng
module Space = Adc_synth.Space
module Constraint_set = Adc_synth.Constraint_set
module Anneal = Adc_synth.Anneal
module Pattern = Adc_synth.Pattern
module De = Adc_synth.De
module Synthesizer = Adc_synth.Synthesizer
module Mdac_stage = Adc_mdac.Mdac_stage
module Ota = Adc_mdac.Ota
module Process = Adc_circuit.Process

let proc = Process.c025

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Space *)

let demo_space () =
  Space.create
    [
      { Space.name = "w"; lo = 1e-6; hi = 1e-4; scale = Space.Log };
      { Space.name = "v"; lo = 0.0; hi = 3.3; scale = Space.Linear };
    ]

let test_space_denormalize () =
  let sp = demo_space () in
  let x = Space.denormalize sp [| 0.5; 0.5 |] in
  check_close ~eps:1e-9 "log midpoint is geometric mean" 1e-5 x.(0);
  check_close ~eps:1e-9 "linear midpoint" 1.65 x.(1)

let test_space_bounds_clamped () =
  let sp = demo_space () in
  let x = Space.denormalize sp [| -1.0; 2.0 |] in
  check_close "clamped low" 1e-6 x.(0);
  check_close "clamped high" 3.3 x.(1)

let prop_space_round_trip =
  QCheck2.Test.make ~name:"normalize/denormalize round trip" ~count:200
    QCheck2.Gen.(pair (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (u1, u2) ->
      let sp = demo_space () in
      let u = [| u1; u2 |] in
      let x = Space.denormalize sp u in
      let u' = Space.normalize sp x in
      Float.abs (u.(0) -. u'.(0)) < 1e-9 && Float.abs (u.(1) -. u'.(1)) < 1e-9)

let test_space_shrink () =
  let sp = demo_space () in
  let sp' = Space.shrink_around sp [| 1e-5; 1.65 |] ~factor:0.2 in
  let vars = Space.variables sp' in
  Alcotest.(check bool) "shrunken log range" true
    (vars.(0).Space.lo > 1e-6 && vars.(0).Space.hi < 1e-4);
  Alcotest.(check bool) "center still inside" true
    (vars.(0).Space.lo < 1e-5 && 1e-5 < vars.(0).Space.hi)

let test_space_value_of () =
  let sp = demo_space () in
  check_close "lookup by name" 2.0 (Space.value_of sp [| 1e-5; 2.0 |] "v");
  Alcotest.check_raises "unknown name" Not_found (fun () ->
      ignore (Space.value_of sp [| 1e-5; 2.0 |] "nope"))

let test_space_rejects_bad_bounds () =
  Alcotest.(check bool) "lo >= hi rejected" true
    (try
       ignore (Space.create [ { Space.name = "x"; lo = 2.0; hi = 1.0; scale = Space.Linear } ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Constraint_set *)

let test_constraints_violation () =
  let c = Constraint_set.at_least "gain" 100.0 in
  check_close "satisfied" 0.0 (Constraint_set.violation c 150.0);
  check_close "half short" 0.5 (Constraint_set.violation c 50.0);
  let c = Constraint_set.at_most "power" 1.0 in
  check_close "over budget" 0.5 (Constraint_set.violation c 1.5)

let test_constraints_total_and_report () =
  let cs =
    Constraint_set.create
      [ Constraint_set.at_least "a" 10.0; Constraint_set.at_most ~weight:2.0 "b" 1.0 ]
  in
  let lookup = function "a" -> Some 5.0 | "b" -> Some 2.0 | _ -> None in
  check_close "weighted total" (0.5 +. (2.0 *. 1.0)) (Constraint_set.total_violation cs ~lookup);
  Alcotest.(check bool) "infeasible" false (Constraint_set.is_feasible cs ~lookup);
  let report = Constraint_set.report cs ~lookup in
  Alcotest.(check int) "two rows" 2 (List.length report)

let test_constraints_missing_metric () =
  let cs = Constraint_set.create [ Constraint_set.at_least "missing" 1.0 ] in
  check_close "missing counts as full violation" 1.0
    (Constraint_set.total_violation cs ~lookup:(fun _ -> None))

(* ------------------------------------------------------------------ *)
(* Optimizer kernels on analytic test functions *)

let sphere target x =
  Array.fold_left ( +. ) 0.0 (Array.mapi (fun i v -> (v -. target.(i)) ** 2.0) x)

let test_anneal_minimizes_sphere () =
  let target = [| 0.3; 0.7; 0.5 |] in
  let rng = Rng.create 42 in
  let r =
    Anneal.minimize ~config:{ Anneal.default_config with iterations = 2000 } rng ~dim:3
      ~x0:[| 0.9; 0.1; 0.9 |] (sphere target)
  in
  Alcotest.(check bool)
    (Printf.sprintf "near optimum (cost %.4f)" r.Anneal.best_cost)
    true (r.Anneal.best_cost < 0.01)

let test_anneal_deterministic () =
  let f = sphere [| 0.5; 0.5 |] in
  let run () =
    let rng = Rng.create 7 in
    (Anneal.minimize rng ~dim:2 ~x0:[| 0.1; 0.9 |] f).Anneal.best_cost
  in
  check_close "same seed same result" (run ()) (run ())

let test_pattern_converges_quadratic () =
  let target = [| 0.25; 0.75 |] in
  let r = Pattern.minimize ~dim:2 ~x0:[| 0.9; 0.1 |] (sphere target) in
  Alcotest.(check bool) "tight convergence" true (r.Pattern.best_cost < 1e-6);
  check_close ~eps:1e-3 "x0 found" 0.25 r.Pattern.best_x.(0);
  check_close ~eps:1e-3 "x1 found" 0.75 r.Pattern.best_x.(1)

let test_pattern_respects_eval_budget () =
  let count = ref 0 in
  let f x =
    incr count;
    sphere [| 0.5 |] x
  in
  ignore (Pattern.minimize ~max_evals:50 ~dim:1 ~x0:[| 0.0 |] f);
  Alcotest.(check bool) "bounded evals" true (!count <= 60)

let test_de_minimizes_shifted_bowl () =
  let rng = Rng.create 9 in
  let r = De.minimize rng ~dim:2 (sphere [| 0.4; 0.6 |]) in
  Alcotest.(check bool) "near optimum" true (r.De.best_cost < 0.01)

let test_de_uses_seed_point () =
  let rng = Rng.create 9 in
  let r =
    De.minimize
      ~config:{ De.default_config with generations = 0 }
      rng ~dim:2 ~seed_point:[| 0.4; 0.6 |] (sphere [| 0.4; 0.6 |])
  in
  (* generation 0: best of the initial population, which contains the seed *)
  check_close ~eps:1e-12 "seed point retained" 0.0 r.De.best_cost

(* ------------------------------------------------------------------ *)
(* Synthesizer *)

let easy_requirements () =
  let spec = Mdac_stage.default_spec ~m:2 ~accuracy_bits:8 ~fs:40e6 in
  Mdac_stage.requirements proc spec ~c_load_ext:0.2e-12 ~c_in_ratio:0.15

let test_initial_sizing_reasonable () =
  let req = easy_requirements () in
  let z = Synthesizer.initial_sizing proc req in
  Alcotest.(check bool) "positive widths" true (z.Ota.w_pair > 0.0 && z.Ota.w_cs > 0.0);
  Alcotest.(check bool) "positive bias" true (z.Ota.i_bias > 0.0);
  Alcotest.(check bool) "low-accuracy job picks the simple topology" true
    (z.Ota.topology = Ota.Miller_simple)

let test_initial_sizing_topology_switch () =
  let spec = Mdac_stage.default_spec ~m:3 ~accuracy_bits:13 ~fs:40e6 in
  let req = Mdac_stage.requirements proc spec ~c_load_ext:1e-12 ~c_in_ratio:0.15 in
  let z = Synthesizer.initial_sizing proc req in
  Alcotest.(check bool) "high-accuracy job uses the cascode" true
    (z.Ota.topology = Ota.Miller_cascode)

let test_constraints_of_covers_specs () =
  let req = easy_requirements () in
  let metrics =
    List.map (fun e -> e.Constraint_set.metric)
      (Constraint_set.entries (Synthesizer.constraints_of req))
  in
  List.iter
    (fun m -> Alcotest.(check bool) (m ^ " constrained") true (List.mem m metrics))
    [ "a0"; "gbw"; "pm"; "sr"; "swing"; "saturated" ]

let test_equation_evaluator_runs () =
  let req = easy_requirements () in
  let z = Synthesizer.initial_sizing proc req in
  let metrics, perf = Synthesizer.evaluate_sizing ~kind:Synthesizer.Equation_only proc req z in
  Alcotest.(check bool) "metrics present" true (List.mem_assoc "power" metrics);
  Alcotest.(check bool) "no simulation performance" true (perf = None)

let test_hybrid_evaluator_runs () =
  let req = easy_requirements () in
  let z = Synthesizer.initial_sizing proc req in
  let metrics, perf = Synthesizer.evaluate_sizing ~kind:Synthesizer.Hybrid proc req z in
  Alcotest.(check bool) "metrics present" true (List.mem_assoc "a0" metrics);
  Alcotest.(check bool) "simulated performance attached" true (perf <> None)

let test_synthesize_small_budget () =
  let req = easy_requirements () in
  match
    Synthesizer.synthesize
      ~budget:{ Synthesizer.sa_iterations = 40; pattern_evals = 60; space_factor = 1.0 }
      ~seed:3 proc req
  with
  | Error e -> Alcotest.failf "synthesize failed: %s" e
  | Ok sol ->
    Alcotest.(check bool) "power positive" true (sol.Synthesizer.power > 0.0);
    Alcotest.(check bool) "counted evaluations" true (sol.Synthesizer.evaluations > 50);
    Alcotest.(check bool) "metrics recorded" true (sol.Synthesizer.metrics <> [])

let test_synthesize_deterministic_pattern_only () =
  let req = easy_requirements () in
  let run () =
    match
      Synthesizer.synthesize
        ~budget:{ Synthesizer.sa_iterations = 0; pattern_evals = 120; space_factor = 1.0 }
        ~seed:1 proc req
    with
    | Ok sol -> sol.Synthesizer.power
    | Error e -> Alcotest.failf "synthesize failed: %s" e
  in
  check_close "pattern-only is reproducible" (run ()) (run ())

let test_warm_start_uses_fewer_evals () =
  let req = easy_requirements () in
  match Synthesizer.synthesize ~seed:3 proc req with
  | Error e -> Alcotest.failf "cold failed: %s" e
  | Ok cold -> begin
    match Synthesizer.synthesize ~seed:4 ~warm_start:cold.Synthesizer.sizing proc req with
    | Error e -> Alcotest.failf "warm failed: %s" e
    | Ok warm ->
      Alcotest.(check bool)
        (Printf.sprintf "warm (%d) cheaper than cold (%d)" warm.Synthesizer.evaluations
           cold.Synthesizer.evaluations)
        true
        (warm.Synthesizer.evaluations < cold.Synthesizer.evaluations)
  end

let test_verified_settling () =
  (* the Hybrid_verified evaluator appends the transient settling check:
     the synthesized cell must actually settle to its tolerance in the
     simulated switched-cap bench *)
  let req = easy_requirements () in
  match
    Synthesizer.synthesize ~kind:Synthesizer.Hybrid_verified
      ~budget:{ Synthesizer.sa_iterations = 0; pattern_evals = 150; space_factor = 1.0 }
      ~seed:5 proc req
  with
  | Error e -> Alcotest.failf "synthesize failed: %s" e
  | Ok sol -> begin
    match sol.Synthesizer.settling with
    | None -> Alcotest.fail "expected a settling verification record"
    | Some st ->
      Alcotest.(check bool) "settled in the window" true (st.Ota.settle_time <> None);
      Alcotest.(check bool)
        (Printf.sprintf "static error %.2e below 1%%" st.Ota.static_error)
        true
        (st.Ota.static_error < 0.01)
  end

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "synth"
    [
      ( "space",
        [
          quick "denormalize" test_space_denormalize;
          quick "bounds clamped" test_space_bounds_clamped;
          quick "shrink" test_space_shrink;
          quick "value_of" test_space_value_of;
          quick "bad bounds" test_space_rejects_bad_bounds;
          QCheck_alcotest.to_alcotest prop_space_round_trip;
        ] );
      ( "constraints",
        [
          quick "violation" test_constraints_violation;
          quick "total and report" test_constraints_total_and_report;
          quick "missing metric" test_constraints_missing_metric;
        ] );
      ( "kernels",
        [
          quick "anneal sphere" test_anneal_minimizes_sphere;
          quick "anneal deterministic" test_anneal_deterministic;
          quick "pattern quadratic" test_pattern_converges_quadratic;
          quick "pattern budget" test_pattern_respects_eval_budget;
          quick "de bowl" test_de_minimizes_shifted_bowl;
          quick "de seed point" test_de_uses_seed_point;
        ] );
      ( "synthesizer",
        [
          quick "initial sizing" test_initial_sizing_reasonable;
          quick "topology switch" test_initial_sizing_topology_switch;
          quick "constraint coverage" test_constraints_of_covers_specs;
          quick "equation evaluator" test_equation_evaluator_runs;
          quick "hybrid evaluator" test_hybrid_evaluator_runs;
          slow "small synthesis" test_synthesize_small_budget;
          slow "deterministic pattern" test_synthesize_deterministic_pattern_only;
          slow "warm start" test_warm_start_uses_fewer_evals;
          slow "verified settling" test_verified_settling;
        ] );
    ]
