(* Tests for the ADC block models: capacitor sizing, comparators, MDAC
   spec translation, S/H, and the OTA generator with its hybrid
   evaluation. *)

module Rng = Adc_numerics.Rng
module Process = Adc_circuit.Process
module Caps = Adc_mdac.Caps
module Comparator = Adc_mdac.Comparator
module Mdac_stage = Adc_mdac.Mdac_stage
module Sha = Adc_mdac.Sha
module Ota = Adc_mdac.Ota
module Expr = Adc_sfg.Expr

let proc = Process.c025

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Caps *)

let test_caps_noise_scaling () =
  (* kT/C capacitance grows 4x per bit of accuracy *)
  let c b = Caps.c_total_for_noise proc ~vref_pp:2.0 ~bits:b ~noise_fraction:0.1 in
  check_close ~eps:1e-9 "4x per bit" 4.0 (c 11 /. c 10);
  check_close ~eps:1e-9 "16x per 2 bits" 16.0 (c 12 /. c 10)

let test_caps_matching_floor () =
  let cu = Caps.c_unit_for_matching proc ~bits:4 ~m:2 in
  check_close ~eps:1e-12 "floor at low accuracy" proc.Process.c_unit_min cu;
  let cu13 = Caps.c_unit_for_matching proc ~bits:13 ~m:2 in
  Alcotest.(check bool) "13-bit unit above floor" true (cu13 > proc.Process.c_unit_min)

let test_caps_sizing_structure () =
  let s = Caps.size proc ~bits:12 ~m:3 ~vref_pp:2.0 ~noise_fraction:0.1 ~c_in_ratio:0.15 in
  Alcotest.(check int) "4 units for m=3" 4 s.Caps.n_units;
  check_close ~eps:1e-9 "gain 4" 4.0 s.Caps.gain;
  check_close ~eps:1e-9 "cs = 3 cf" 3.0 (s.Caps.c_sample /. s.Caps.c_feedback);
  check_close ~eps:1e-9 "total = cs + cf" s.Caps.c_total (s.Caps.c_sample +. s.Caps.c_feedback);
  (* beta = 1 / (gain * (1 + ratio)) in the scale-invariant model *)
  check_close ~eps:1e-9 "beta" (1.0 /. (4.0 *. 1.15)) s.Caps.beta

let prop_caps_invariants =
  QCheck2.Test.make ~name:"cap sizing invariants" ~count:100
    QCheck2.Gen.(pair (int_range 6 14) (int_range 2 4))
    (fun (bits, m) ->
      let s = Caps.size proc ~bits ~m ~vref_pp:2.0 ~noise_fraction:0.1 ~c_in_ratio:0.15 in
      s.Caps.n_units = 1 lsl (m - 1)
      && s.Caps.c_unit >= proc.Process.c_unit_min
      && s.Caps.beta > 0.0
      && s.Caps.beta < 1.0
      && Float.abs (s.Caps.c_total -. (float_of_int s.Caps.n_units *. s.Caps.c_unit)) < 1e-18)

(* ------------------------------------------------------------------ *)
(* Comparator *)

let test_comparator_count () =
  Alcotest.(check int) "1.5-bit stage has 2" 2 (Comparator.count ~m:2);
  Alcotest.(check int) "2.5-bit stage has 6" 6 (Comparator.count ~m:3);
  Alcotest.(check int) "3.5-bit stage has 14" 14 (Comparator.count ~m:4)

let test_comparator_offset_budget () =
  (* one redundant bit relaxes offsets to vref/2^(m+1) *)
  check_close "m=2 budget" 0.25 (Comparator.offset_budget ~vref_pp:2.0 ~m:2);
  check_close "m=4 budget" 0.0625 (Comparator.offset_budget ~vref_pp:2.0 ~m:4)

let test_comparator_power_monotone_m () =
  let p m = Comparator.stage_power proc ~fs:40e6 ~vref_pp:2.0 ~m in
  Alcotest.(check bool) "more bits cost more" true (p 2 < p 3 && p 3 < p 4)

let test_comparator_power_scales_with_fs () =
  let p fs = Comparator.power_per_comparator proc ~fs ~offset_budget:0.25 in
  Alcotest.(check bool) "dynamic part grows with fs" true (p 80e6 > p 40e6)

let test_comparator_decide_known () =
  let d = Comparator.decide ~vref_pp:2.0 ~vcm:0.0 ~m:2 ~offsets:[| 0.0; 0.0 |] in
  (* 1.5-bit thresholds at -0.25 and +0.25 *)
  Alcotest.(check int) "low" 0 (d (-0.5)).Comparator.code;
  Alcotest.(check int) "mid" 1 (d 0.0).Comparator.code;
  Alcotest.(check int) "high" 2 (d 0.5).Comparator.code

let prop_comparator_decide_monotone =
  QCheck2.Test.make ~name:"flash code monotone in input" ~count:100
    QCheck2.Gen.(pair (int_range 2 4) (pair (float_range (-1.0) 1.0) (float_range (-1.0) 1.0)))
    (fun (m, (v1, v2)) ->
      let offsets = Array.make (Comparator.count ~m) 0.0 in
      let code v = (Comparator.decide ~vref_pp:2.0 ~vcm:0.0 ~m ~offsets v).Comparator.code in
      if v1 <= v2 then code v1 <= code v2 else code v1 >= code v2)

(* ------------------------------------------------------------------ *)
(* Mdac_stage *)

let spec_of m bits = Mdac_stage.default_spec ~m ~accuracy_bits:bits ~fs:40e6

let test_requirements_structure () =
  let req = Mdac_stage.requirements proc (spec_of 3 12) ~c_load_ext:1e-12 ~c_in_ratio:0.15 in
  (* settling accuracy is the backend resolution: 12 - 2 = 10 bits *)
  check_close ~eps:1e-12 "settle tolerance" (2.0 ** -11.0) req.Mdac_stage.settle_tol;
  Alcotest.(check bool) "gain spec positive" true (req.Mdac_stage.a0_min > 1000.0);
  Alcotest.(check bool) "load includes feedback cap" true
    (req.Mdac_stage.c_load_eff > req.Mdac_stage.c_load_ext)

let test_requirements_monotone_bits () =
  let gbw bits =
    (Mdac_stage.requirements proc (spec_of 3 bits) ~c_load_ext:1e-12 ~c_in_ratio:0.15)
      .Mdac_stage.gbw_min_hz
  in
  Alcotest.(check bool) "more accuracy needs more bandwidth" true (gbw 13 > gbw 9)

let test_requirements_monotone_fs () =
  let gbw fs =
    let spec = { (spec_of 3 12) with Mdac_stage.fs } in
    (Mdac_stage.requirements proc spec ~c_load_ext:1e-12 ~c_in_ratio:0.15)
      .Mdac_stage.gbw_min_hz
  in
  Alcotest.(check bool) "faster clock needs more bandwidth" true (gbw 80e6 > gbw 40e6)

let test_equation_power_positive_and_monotone () =
  let p bits =
    let req = Mdac_stage.requirements proc (spec_of 3 bits) ~c_load_ext:1e-12 ~c_in_ratio:0.15 in
    (Mdac_stage.equation_power proc req).Mdac_stage.p_total
  in
  Alcotest.(check bool) "positive" true (p 10 > 0.0);
  Alcotest.(check bool) "monotone in accuracy" true (p 13 > p 10)

let test_residue_known_values () =
  (* 1.5-bit stage, code 1 (middle): residue = 2x *)
  let r = Mdac_stage.residue_ideal ~m:2 ~vref_pp:2.0 ~vcm:0.0 ~code:1 0.1 in
  check_close ~eps:1e-12 "mid segment doubles" 0.2 r;
  (* code 2 subtracts half the reference after gain *)
  let r = Mdac_stage.residue_ideal ~m:2 ~vref_pp:2.0 ~vcm:0.0 ~code:2 0.5 in
  check_close ~eps:1e-12 "top segment" 0.0 r

let prop_residue_bounded =
  QCheck2.Test.make ~name:"residue stays in range for correct codes" ~count:200
    QCheck2.Gen.(pair (int_range 2 4) (float_range (-0.999) 0.999))
    (fun (m, x) ->
      let v = x *. 1.0 in
      let offsets = Array.make (Comparator.count ~m) 0.0 in
      let code = (Comparator.decide ~vref_pp:2.0 ~vcm:0.0 ~m ~offsets v).Comparator.code in
      let r = Mdac_stage.residue_ideal ~m ~vref_pp:2.0 ~vcm:0.0 ~code v in
      (* with ideal thresholds the residue never exceeds half scale + one
         sub-DAC step *)
      Float.abs r <= 1.0 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Sha *)

let test_sha_requirements () =
  let req = Sha.requirements proc ~bits:13 ~fs:40e6 ~vref_pp:2.0 ~noise_fraction:0.1 in
  Alcotest.(check bool) "cap positive" true (req.Sha.c_sample > 0.0);
  Alcotest.(check bool) "gain spec" true (req.Sha.a0_min > 10000.0);
  let p = Sha.equation_power proc req ~c_load_ext:2e-12 in
  Alcotest.(check bool) "power positive" true (p > 0.0)

(* ------------------------------------------------------------------ *)
(* Ota *)

let test_ota_netlist_valid () =
  List.iter
    (fun topology ->
      let z = { Ota.default_sizing with Ota.topology } in
      let p = Ota.build proc z in
      match Adc_circuit.Netlist.validate p.Ota.nl with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid netlist: %s" e)
    [ Ota.Miller_simple; Ota.Miller_cascode ]

let test_ota_simple_evaluates () =
  match Ota.evaluate proc Ota.default_sizing with
  | Error e -> Alcotest.failf "evaluate failed: %s" e
  | Ok perf ->
    Alcotest.(check bool) "gain above 60 dB" true (perf.Ota.dc_gain > 1000.0);
    Alcotest.(check bool) "devices saturated" true perf.Ota.all_saturated;
    Alcotest.(check bool) "positive power" true (perf.Ota.power > 0.0);
    Alcotest.(check bool) "has unity-gain freq" true (perf.Ota.gbw_hz <> None);
    Alcotest.(check bool) "swing window sane" true
      (perf.Ota.swing_high > perf.Ota.swing_low)

let test_ota_cascode_has_more_gain () =
  let simple = { Ota.default_sizing with Ota.topology = Ota.Miller_simple } in
  let cascode = { Ota.default_sizing with Ota.topology = Ota.Miller_cascode; v_casc = 1.3 } in
  match (Ota.evaluate proc simple, Ota.evaluate proc cascode) with
  | Ok s, Ok c ->
    Alcotest.(check bool)
      (Printf.sprintf "cascode gain (%.0f) > simple gain (%.0f)" c.Ota.dc_gain s.Ota.dc_gain)
      true (c.Ota.dc_gain > s.Ota.dc_gain)
  | Error e, _ | _, Error e -> Alcotest.failf "evaluate failed: %s" e

let test_ota_settling_bench_accuracy () =
  match
    Ota.settling_bench proc Ota.default_sizing ~gain:2.0 ~c_feedback:0.5e-12
      ~c_load:1e-12 ~v_step:0.2 ~t_window:60e-9 ~tol:0.001
  with
  | Error e -> Alcotest.failf "settling bench failed: %s" e
  | Ok s ->
    Alcotest.(check bool) "settles" true (s.Ota.settle_time <> None);
    Alcotest.(check bool)
      (Printf.sprintf "small static error (%.2e)" s.Ota.static_error)
      true
      (s.Ota.static_error < 0.01);
    check_close ~eps:0.02 "final matches charge conservation" s.Ota.ideal_value s.Ota.final_value

let test_ota_symbolic_transfer_mentions_devices () =
  match Ota.symbolic_transfer proc Ota.default_sizing with
  | Error e -> Alcotest.failf "symbolic transfer failed: %s" e
  | Ok expr ->
    let vs = Expr.vars expr in
    Alcotest.(check bool) "mentions gm of the input pair" true (List.mem "gm_m2" vs);
    Alcotest.(check bool) "mentions the Laplace variable" true (List.mem "s" vs)

let test_ota_power_tracks_bias () =
  let low = { Ota.default_sizing with Ota.i_bias = 50e-6 } in
  let high = { Ota.default_sizing with Ota.i_bias = 200e-6 } in
  match (Ota.evaluate proc low, Ota.evaluate proc high) with
  | Ok l, Ok h -> Alcotest.(check bool) "power follows bias" true (h.Ota.power > l.Ota.power)
  | Error e, _ | _, Error e -> Alcotest.failf "evaluate failed: %s" e

(* ------------------------------------------------------------------ *)
(* Switched-capacitor MDAC transient bench *)

module Sc_mdac = Adc_mdac.Sc_mdac

let test_sc_mdac_residue_all_codes () =
  (* the full switched-capacitor signal path (sampling, DAC switching,
     flip-around amplification) must land on the ideal 1.5-bit residue *)
  List.iter
    (fun (v_in, code) ->
      match
        Sc_mdac.residue_bench proc Ota.default_sizing ~v_in ~code ~vref_pp:2.0
          ~fs:10e6
      with
      | Error e -> Alcotest.failf "bench failed: %s" e
      | Ok r ->
        Alcotest.(check bool)
          (Printf.sprintf "settled (vin %+.2f, d=%d)" v_in code)
          true r.Sc_mdac.settled;
        Alcotest.(check bool)
          (Printf.sprintf "residue error %.4f below 0.5%% (vin %+.2f, d=%d)"
             r.Sc_mdac.error_rel v_in code)
          true
          (r.Sc_mdac.error_rel < 0.005))
    [ (0.1, 1); (0.3, 2); (-0.3, 0); (-0.1, 1) ]

let prop_sc_mdac_matches_ideal =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"sc mdac tracks the ideal residue" ~count:8
       QCheck2.Gen.(float_range (-0.45) 0.45)
       (fun v_in ->
         (* the code is what the stage's own flash would decide, so the
            residue stays on-range (mismatched pairs would rail the OTA) *)
         let code =
           (Comparator.decide ~vref_pp:2.0 ~vcm:0.0 ~m:2 ~offsets:[| 0.0; 0.0 |] v_in)
             .Comparator.code
         in
         match
           Sc_mdac.residue_bench proc Ota.default_sizing ~v_in ~code ~vref_pp:2.0
             ~fs:10e6
         with
         | Error _ -> false
         | Ok r -> r.Sc_mdac.error_rel < 0.01))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "mdac"
    [
      ( "caps",
        [
          quick "noise scaling" test_caps_noise_scaling;
          quick "matching floor" test_caps_matching_floor;
          quick "sizing structure" test_caps_sizing_structure;
          QCheck_alcotest.to_alcotest prop_caps_invariants;
        ] );
      ( "comparator",
        [
          quick "count" test_comparator_count;
          quick "offset budget" test_comparator_offset_budget;
          quick "power monotone in m" test_comparator_power_monotone_m;
          quick "power scales with fs" test_comparator_power_scales_with_fs;
          quick "decide known codes" test_comparator_decide_known;
          QCheck_alcotest.to_alcotest prop_comparator_decide_monotone;
        ] );
      ( "mdac_stage",
        [
          quick "requirements structure" test_requirements_structure;
          quick "monotone in bits" test_requirements_monotone_bits;
          quick "monotone in fs" test_requirements_monotone_fs;
          quick "equation power" test_equation_power_positive_and_monotone;
          quick "residue known values" test_residue_known_values;
          QCheck_alcotest.to_alcotest prop_residue_bounded;
        ] );
      ("sha", [ quick "requirements and power" test_sha_requirements ]);
      ( "sc-mdac",
        [
          Alcotest.test_case "residue all codes" `Slow test_sc_mdac_residue_all_codes;
          prop_sc_mdac_matches_ideal;
        ] );
      ( "ota",
        [
          quick "netlists valid" test_ota_netlist_valid;
          quick "simple evaluates" test_ota_simple_evaluates;
          quick "cascode gain" test_ota_cascode_has_more_gain;
          quick "settling bench" test_ota_settling_bench_accuracy;
          quick "symbolic transfer" test_ota_symbolic_transfer_mentions_devices;
          quick "power tracks bias" test_ota_power_tracks_bias;
        ] );
    ]
