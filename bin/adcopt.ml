(* adcopt: designer-driven topology optimization for pipelined ADCs.

   Command-line front end over the library: candidate enumeration, the
   topology optimizer (equation or full-synthesis evaluation), the
   resolution sweep behind the paper's Fig. 2/3, single-block synthesis,
   and behavioral verification. *)

module Config = Adc_pipeline.Config
module Spec = Adc_pipeline.Spec
module Optimize = Adc_pipeline.Optimize
module Rules = Adc_pipeline.Rules
module Fom = Adc_pipeline.Fom
module Front = Adc_pipeline.Front
module Report = Adc_pipeline.Report
module Behavioral = Adc_pipeline.Behavioral
module Metrics = Adc_pipeline.Metrics
module Synthesizer = Adc_synth.Synthesizer
module Units = Adc_numerics.Units
module Pool = Adc_exec.Pool
module Cancel = Adc_exec.Cancel
module Json = Adc_json.Json
module Api = Adc_api
module Codec = Adc_serve.Codec
module Store = Adc_serve.Store
module Server = Adc_serve.Server
module Client = Adc_serve.Client
module Router = Adc_cluster.Router
module Trace_reader = Adc_report.Trace_reader
module Trace_analysis = Adc_report.Trace_analysis
module Trace_export = Adc_report.Trace_export
module Progress = Adc_report.Progress

open Cmdliner

(* ------------------------------------------------------------------ *)
(* shared arguments

   Verb parameters (flag spellings, defaults, documentation) are defined
   once in [Adc_api]; [term_of] turns a descriptor into a Cmdliner term,
   so the CLI cannot drift from the daemon's wire decoding — both read
   the same table. Flags that exist only on the CLI (--jobs, --trace,
   --timeout, ...) keep local definitions below. *)

let term_of : type a. a Api.param -> a Term.t =
 fun p ->
  let ainfo = Arg.info p.Api.flags ~docv:p.Api.docv ~doc:p.Api.doc in
  match p.Api.ty with
  | Api.Int -> Arg.(value & opt int p.Api.default & ainfo)
  | Api.Float -> Arg.(value & opt float p.Api.default & ainfo)
  | Api.Mode -> Arg.(value & opt (enum Api.mode_choices) p.Api.default & ainfo)
  | Api.Opt_int -> Arg.(value & opt (some int) p.Api.default & ainfo)
  | Api.Opt_string -> Arg.(value & opt (some string) p.Api.default & ainfo)
  | Api.Int_grid ->
    (* the shared grid syntax: "10,11", "10..13", "10,12..13" *)
    let grid_conv =
      let parse s =
        match Api.parse_int_grid s with
        | Ok ns -> Ok ns
        | Error e -> Error (`Msg e)
      in
      let print fmt ns =
        Format.pp_print_string fmt (String.concat "," (List.map string_of_int ns))
      in
      Arg.conv (parse, print)
    in
    Arg.(value & opt grid_conv p.Api.default & ainfo)
  | Api.Float_list -> Arg.(value & opt (list float) p.Api.default & ainfo)

let k_arg = term_of Api.k
let fs_arg = term_of Api.fs_mhz
let mode_arg = term_of Api.mode
let seed_arg = term_of Api.seed
let attempts_arg = term_of Api.attempts

let jobs_arg =
  let doc =
    "Domains for the synthesis phase: $(b,0) (default) uses one per \
     available core, $(b,1) forces the sequential path. Results are \
     identical for every value; only the wall-clock time changes."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let trace_arg =
  let doc =
    "Write a JSONL span trace of the run to $(docv) (one JSON object per \
     line; see docs/OBSERVABILITY.md for the schema). Tracing never \
     perturbs the synthesis RNG streams: results are bit-identical with \
     and without it."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Collect counters/gauges/histograms (evaluator calls, memo hit/miss, \
     pool queue latency, per-domain utilization) and print them after the \
     run."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let progress_arg =
  let doc =
    "Draw a live status line on stderr (jobs done/total, evaluator calls, \
     memo hits, elapsed, ETA). The reporter only consumes finished spans — \
     results stay bit-identical to a silent run."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let timeout_arg =
  let doc =
    "Give up after $(docv) seconds: the run returns its best-so-far \
     result, a truncation note goes to stderr, and the exit status is 2. \
     Expiry is cooperative (polled between jobs and restart attempts), \
     so the wall time may overshoot by one attempt."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let cancel_of_timeout = function
  | None -> Cancel.never
  | Some after_s -> Cancel.with_deadline ~after_s ()

(* --timeout contract shared by optimize/sweep/synth: note + exit 2 *)
let finish_truncated what =
  Printf.eprintf
    "adcopt: %s timed out; results above are the best found so far\n" what;
  exit 2

let die fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt

let host_port_of_string s =
  match String.rindex_opt s ':' with
  | None -> die "adcopt: --listen expects HOST:PORT, got %s" s
  | Some i ->
    let host = String.sub s 0 i
    and port = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt port with
    | Some p when p >= 0 -> ((if host = "" then "127.0.0.1" else host), p)
    | Some _ | None -> die "adcopt: bad port in --listen %s" s)

(* build the observability context for one command invocation; callers
   must [finish_obs] it so the trace file is flushed, the status line
   terminated and the metrics table printed. [total]/[domains] feed the
   progress reporter's ETA when --progress is on. *)
let obs_of ?(progress = false) ?total ?domains trace metrics =
  let base =
    try Adc_obs.create ?trace ~metrics ()
    with Sys_error msg -> die "adcopt: cannot open trace file: %s" msg
  in
  if not progress then (base, None)
  else begin
    let p = Progress.create ?total ?domains () in
    ( { base with Adc_obs.sink = Adc_obs.Sink.tee base.Adc_obs.sink (Progress.sink p) },
      Some p )
  end

(* [to_stderr] keeps the metrics table off stdout when stdout carries a
   machine-readable payload (--json) *)
let finish_obs ?(to_stderr = false) ((obs : Adc_obs.t), progress) =
  Option.iter Progress.finish progress;
  if Adc_obs.Metrics.enabled obs.Adc_obs.metrics then begin
    let table = Adc_obs.Metrics.render obs.Adc_obs.metrics in
    if to_stderr then prerr_string table else print_string table
  end;
  Adc_obs.close obs

(* 0 = auto-detect; the pool itself clamps to >= 1 *)
let resolve_jobs n = if n <= 0 then Pool.recommended_size () else n

let spec_of k fs = Spec.make ~k ~fs:(fs *. 1e6) ()

(* ------------------------------------------------------------------ *)
(* enumerate *)

let enumerate k fs =
  let spec = spec_of k fs in
  let cands = Config.enumerate_leading ~k ~backend_bits:(Spec.backend_bits spec) in
  Printf.printf "%d-bit pipelined ADC: %d candidate configurations (backend %d bits)\n"
    k (List.length cands) (Spec.backend_bits spec);
  List.iter (fun c -> Printf.printf "  %s\n" (Config.to_string c)) cands;
  let jobs = Spec.distinct_jobs spec cands in
  Printf.printf "%d distinct MDAC jobs to synthesize:\n" (List.length jobs);
  List.iter (fun j -> Printf.printf "  %s\n" (Spec.job_to_string j)) jobs

let enumerate_cmd =
  let doc = "Enumerate the stage-resolution candidates (paper Section 2)." in
  Cmd.v (Cmd.info "enumerate" ~doc) Term.(const enumerate $ k_arg $ fs_arg)

(* ------------------------------------------------------------------ *)
(* optimize *)

let print_optimize_human spec (run : Optimize.run) =
  print_string (Report.candidate_summary run);
  print_string (Report.fig1_table run);
  (match run.Optimize.mode with
  | `Equation -> ()
  | `Hybrid | `Hybrid_verified ->
    Printf.printf
      "synthesis: %d evaluator calls, %d cold / %d warm jobs, %.1f s on %d domain(s)\n"
      run.Optimize.synthesis_evaluations run.Optimize.cold_jobs
      run.Optimize.warm_jobs run.Optimize.wall_time_s run.Optimize.domains);
  Printf.printf "optimum: %s at %s\n"
    (Config.to_string (Optimize.optimum_config run))
    (Units.format_power run.Optimize.optimum.Optimize.p_total);
  let full =
    Adc_pipeline.Power_model.full_converter spec (Optimize.optimum_config run)
  in
  Printf.printf
    "full converter (equation model): %s = S/H %s + front stages + %d-stage backend\n"
    (Units.format_power full.Adc_pipeline.Power_model.p_full)
    (Units.format_power full.Adc_pipeline.Power_model.p_sha)
    (List.length full.Adc_pipeline.Power_model.backend)

(* summary printed for a design-store hit in human mode (the stored
   payload has no wall-time or domain figures — they are not part of
   the deterministic result) *)
let print_stored_human payload =
  let str name =
    match Json.member name payload with Some (Json.String s) -> s | _ -> "?"
  in
  let num name =
    match Json.member name payload with
    | Some (Json.Float f) -> f
    | Some (Json.Int n) -> float_of_int n
    | _ -> Float.nan
  in
  Printf.printf "optimum: %s at %s (replayed from the design store)\n"
    (str "optimum")
    (Units.format_power (num "p_total"))

let optimize k fs mode seed attempts jobs timeout store json trace metrics
    progress =
  let spec = spec_of k fs in
  let store = Option.map Store.open_dir store in
  let key = Codec.key_optimize ~k ~fs_mhz:fs ~mode ~seed ~attempts () in
  match Option.bind store (fun s -> Store.find s ~key) with
  | Some payload ->
    (* stored bytes are the canonical serialization: print them verbatim
       so a warm CLI run is byte-identical to the cold one *)
    if json then print_endline payload
    else print_stored_human (Json.parse payload)
  | None ->
    let jobs = resolve_jobs jobs in
    let total =
      List.length
        (Spec.distinct_jobs spec
           (Config.enumerate_leading ~k ~backend_bits:(Spec.backend_bits spec)))
    in
    let ((obs, _) as ctx) = obs_of ~progress ~total ~domains:jobs trace metrics in
    let cancel = cancel_of_timeout timeout in
    let run = Optimize.run ~mode ~seed ~attempts ~jobs ~obs ~cancel spec in
    let payload = Codec.optimize_payload run in
    if json then print_endline (Json.to_string payload)
    else print_optimize_human spec run;
    (match store with
    | Some s when not run.Optimize.truncated ->
      Store.add s ~key ~payload:(Json.to_string payload)
    | _ -> ());
    finish_obs ~to_stderr:json ctx;
    if run.Optimize.truncated then finish_truncated "optimization"

let store_arg =
  let doc =
    "Persistent design store directory (created if missing): a completed \
     run is recorded under its (k, fs, mode, seed, attempts) key and \
     replayed byte-identically by later runs — including a concurrently \
     running $(b,adcopt serve) pointed at the same directory."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let json_arg =
  let doc =
    "Print the result as one line of canonical JSON on stdout (the same \
     payload the serve daemon returns in its $(b,result) field) instead \
     of the human tables. Metrics and progress go to stderr."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let optimize_cmd =
  let doc = "Run the topology optimization for one converter spec." in
  Cmd.v (Cmd.info "optimize" ~doc)
    Term.(const optimize $ k_arg $ fs_arg $ mode_arg $ seed_arg $ attempts_arg
          $ jobs_arg $ timeout_arg $ store_arg $ json_arg $ trace_arg
          $ metrics_arg $ progress_arg)

(* ------------------------------------------------------------------ *)
(* sweep *)

let sweep k_lo k_hi fs mode seed attempts jobs timeout trace metrics progress =
  let jobs = resolve_jobs jobs in
  let ks = List.init (k_hi - k_lo + 1) (fun i -> k_lo + i) in
  (* each resolution is optimized twice — once for the Fig. 2 table and
     once inside the rule derivation — so the progress denominator
     counts every distinct MDAC job twice *)
  let total =
    2
    * List.fold_left
        (fun acc k ->
          let spec = spec_of k fs in
          acc
          + List.length
              (Spec.distinct_jobs spec
                 (Config.enumerate_leading ~k
                    ~backend_bits:(Spec.backend_bits spec))))
        0 ks
  in
  let ((obs, _) as ctx) = obs_of ~progress ~total ~domains:jobs trace metrics in
  let cancel = cancel_of_timeout timeout in
  let runs =
    List.filter_map
      (fun k ->
        if Cancel.cancelled cancel then None
        else Some (Optimize.run ~mode ~seed ~attempts ~jobs ~obs ~cancel (spec_of k fs)))
      ks
  in
  print_string (Report.fig2_table runs);
  (match mode with
  | `Equation -> ()
  | `Hybrid | `Hybrid_verified ->
    List.iter
      (fun (r : Optimize.run) ->
        Printf.printf
          "  %2d-bit synthesis: %d evaluator calls, %.1f s on %d domain(s)\n"
          r.Optimize.spec.Spec.k r.Optimize.synthesis_evaluations
          r.Optimize.wall_time_s r.Optimize.domains)
      runs);
  let chart =
    Rules.sweep ~mode ~seed ~jobs ~obs ~cancel ~k_values:ks (fun ~k -> spec_of k fs)
  in
  print_string (Rules.render chart);
  finish_obs ctx;
  if Cancel.cancelled cancel then finish_truncated "sweep"

let k_lo_arg = term_of Api.k_from
let k_hi_arg = term_of Api.k_to

let sweep_cmd =
  let doc = "Sweep resolutions and derive the optimum-candidate rules (Fig. 2/3)." in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const sweep $ k_lo_arg $ k_hi_arg $ fs_arg $ mode_arg $ seed_arg
          $ attempts_arg $ jobs_arg $ timeout_arg $ trace_arg $ metrics_arg
          $ progress_arg)

(* ------------------------------------------------------------------ *)
(* batch: many specs, one fused synthesis pass *)

let batch ks fs mode seed attempts jobs timeout json trace metrics progress =
  if ks = [] then die "adcopt batch: need at least one resolution";
  let jobs = resolve_jobs jobs in
  let specs =
    List.map
      (fun k ->
        try spec_of k fs with Invalid_argument msg -> die "adcopt batch: %s" msg)
      ks
  in
  (* progress denominator: the per-spec work lists; global dedup means
     the bar can finish early, never late *)
  let total =
    List.fold_left
      (fun acc spec ->
        acc
        + List.length
            (Spec.distinct_jobs spec
               (Config.enumerate_leading ~k:spec.Spec.k
                  ~backend_bits:(Spec.backend_bits spec))))
      0 specs
  in
  let ((obs, _) as ctx) = obs_of ~progress ~total ~domains:jobs trace metrics in
  let cancel = cancel_of_timeout timeout in
  let b = Optimize.run_batch ~mode ~seed ~attempts ~jobs ~obs ~cancel specs in
  if json then
    (* one optimize payload per line, input order: line i is
       byte-identical to `adcopt optimize -k <ks_i> --json` *)
    List.iter
      (fun run -> print_endline (Json.to_string (Codec.optimize_payload run)))
      b.Optimize.batch_runs
  else begin
    List.iter2
      (fun spec run ->
        Printf.printf "=== %d-bit converter ===\n" spec.Spec.k;
        print_optimize_human spec run)
      specs b.Optimize.batch_runs;
    Printf.printf
      "batch: %d specs, %d job occurrences fused into %d distinct syntheses, \
       %.1f s on %d domain(s)\n"
      (List.length specs) b.Optimize.job_occurrences
      b.Optimize.distinct_syntheses b.Optimize.batch_wall_s
      b.Optimize.batch_domains
  end;
  (* the fusion counters always go to stderr so --json stdout stays a
     clean payload stream for cmp *)
  Printf.eprintf "adcopt batch: %d specs, %d job occurrences, %d distinct syntheses\n"
    (List.length specs) b.Optimize.job_occurrences b.Optimize.distinct_syntheses;
  finish_obs ~to_stderr:json ctx;
  if b.Optimize.batch_truncated then finish_truncated "batch"

let ks_arg = term_of Api.ks

let batch_cmd =
  let doc =
    "Optimize several resolutions as one fused batch: each spec's distinct \
     MDAC jobs are keyed, deduplicated across the whole batch, and the \
     union is synthesized once, hardest-first, over a shared domain pool. \
     Every per-spec result is byte-identical to its own one-shot \
     $(b,adcopt optimize) run."
  in
  Cmd.v (Cmd.info "batch" ~doc)
    Term.(const batch $ ks_arg $ fs_arg $ mode_arg $ seed_arg $ attempts_arg
          $ jobs_arg $ timeout_arg $ json_arg $ trace_arg $ metrics_arg
          $ progress_arg)

(* ------------------------------------------------------------------ *)
(* pareto: the FoM front over the (k, fs) grid *)

let fs_list_arg = term_of Api.fs_list

(* warm-hit human summary, reconstructed from the stored grid *)
let print_stored_pareto_human payload =
  let cells =
    match Json.member "grid" payload with Some (Json.List cs) -> cs | _ -> []
  in
  let num cell name =
    match Json.member name cell with
    | Some (Json.Float f) -> f
    | Some (Json.Int n) -> float_of_int n
    | _ -> Float.nan
  in
  let on_front cell =
    Json.member "on_front" cell = Some (Json.Bool true)
  in
  Printf.printf
    "Pareto front (replayed from the design store): %d cells, %d on the front\n"
    (List.length cells)
    (List.length (List.filter on_front cells));
  List.iter
    (fun cell ->
      let fom = Option.value (Json.member "fom" cell) ~default:Json.Null in
      Printf.printf "%s K=%-3.0f fs=%-9.6g MHz  %s  %.1f fJ/step, %.1f dB\n"
        (if on_front cell then "*" else " ")
        (num cell "k") (num cell "fs_mhz")
        (match Json.member_path "optimize.optimum" cell with
        | Some (Json.String s) -> s
        | _ -> "?")
        (num fom "walden_fj_per_step")
        (num fom "schreier_db"))
    cells

let pareto ks fs_list mode seed attempts jobs timeout store json trace metrics
    progress =
  if ks = [] then die "adcopt pareto: need at least one resolution";
  if fs_list = [] then die "adcopt pareto: need at least one sampling rate";
  let store = Option.map Store.open_dir store in
  let key = Codec.key_pareto ~ks ~fs_list ~mode ~seed ~attempts () in
  match Option.bind store (fun s -> Store.find s ~key) with
  | Some payload ->
    let parsed = Json.parse payload in
    if json then begin
      (* replay the NDJSON stream a cold run printed: front point lines
         from the stored grid (canonical serializer: the re-serialized
         cells are the very bytes the cold run emitted), then the
         stored summary verbatim *)
      (match Json.member "grid" parsed with
      | Some (Json.List cells) ->
        List.iter
          (fun cell ->
            match Json.member "on_front" cell with
            | Some (Json.Bool true) -> print_endline (Json.to_string cell)
            | _ -> ())
          cells
      | _ -> ());
      print_endline payload
    end
    else print_stored_pareto_human parsed
  | None ->
    let jobs = resolve_jobs jobs in
    (* the deduplicated grid, for the progress denominator only (the
       search re-derives it); global dedup means the bar can finish
       early, never late *)
    let grid_ks = List.sort_uniq (fun a b -> compare b a) ks in
    let grid_fs = List.sort_uniq (fun a b -> compare b a) fs_list in
    let total =
      List.fold_left
        (fun acc k ->
          List.fold_left
            (fun acc f ->
              let spec =
                try spec_of k f
                with Invalid_argument msg -> die "adcopt pareto: %s" msg
              in
              acc
              + List.length
                  (Spec.distinct_jobs spec
                     (Config.enumerate_leading ~k
                        ~backend_bits:(Spec.backend_bits spec))))
            acc grid_fs)
        0 grid_ks
    in
    let ((obs, _) as ctx) = obs_of ~progress ~total ~domains:jobs trace metrics in
    let cancel = cancel_of_timeout timeout in
    let on_point pt =
      (* NDJSON: one front point per line, as soon as its membership is
         final — the same payloads the serve verb streams *)
      if json then print_endline (Json.to_string (Codec.pareto_point_payload pt))
    in
    let fr =
      try
        Front.search ~mode ~seed ~attempts ~jobs ~obs ~cancel ~on_point ~ks
          ~fs_mhz:fs_list ()
      with Invalid_argument msg -> die "adcopt pareto: %s" msg
    in
    let payload = Codec.pareto_payload fr in
    if json then print_endline (Json.to_string payload)
    else print_string (Front.render fr);
    (match store with
    | Some s when not fr.Front.front_truncated ->
      Store.add s ~key ~payload:(Json.to_string payload)
    | _ -> ());
    Printf.eprintf
      "adcopt pareto: %d cells, %d job occurrences, %d distinct syntheses, \
       %d on the front\n"
      (List.length fr.Front.points) fr.Front.job_occurrences
      fr.Front.distinct_syntheses
      (List.length fr.Front.front);
    finish_obs ~to_stderr:json ctx;
    if fr.Front.front_truncated then finish_truncated "pareto search"

let pareto_cmd =
  let doc =
    "Map the FoM Pareto front over the resolution × sampling-rate grid: \
     every (k, fs) cell is optimized in one fused batch (MDAC jobs shared \
     between cells are synthesized once), each optimum gets its \
     energy-per-conversion-step and Walden/Schreier figures of merit, and \
     the dominated cells are pruned. With $(b,--json), front points print \
     as NDJSON lines the moment their membership is final, followed by \
     one summary line; each point's $(b,optimize) object is byte-identical \
     to the one-shot $(b,adcopt optimize --json) run at the same \
     parameters. See docs/PARETO.md."
  in
  Cmd.v (Cmd.info "pareto" ~doc)
    Term.(const pareto $ ks_arg $ fs_list_arg $ mode_arg $ seed_arg
          $ attempts_arg $ jobs_arg $ timeout_arg $ store_arg $ json_arg
          $ trace_arg $ metrics_arg $ progress_arg)

(* ------------------------------------------------------------------ *)
(* synth: one MDAC job *)

let synth m bits fs seed attempts jobs timeout trace metrics progress =
  let spec = spec_of 13 fs in
  let jobs = resolve_jobs jobs in
  let ((obs, _) as ctx) =
    obs_of ~progress ~total:(Stdlib.max 1 attempts) ~domains:jobs trace metrics
  in
  let job = { Spec.m; input_bits = bits } in
  let req = Spec.stage_requirements spec job in
  Printf.printf "MDAC job %s block specs:\n" (Spec.job_to_string job);
  Printf.printf "  interstage gain      %g\n" req.Adc_mdac.Mdac_stage.caps.Adc_mdac.Caps.gain;
  Printf.printf "  sampling array       %s\n"
    (Units.format_cap req.Adc_mdac.Mdac_stage.caps.Adc_mdac.Caps.c_total);
  Printf.printf "  feedback factor      %.3f\n" req.Adc_mdac.Mdac_stage.caps.Adc_mdac.Caps.beta;
  Printf.printf "  DC gain              >= %.0f\n" req.Adc_mdac.Mdac_stage.a0_min;
  Printf.printf "  unity-gain bandwidth >= %s\n"
    (Units.format_freq req.Adc_mdac.Mdac_stage.gbw_min_hz);
  Printf.printf "  slew rate            >= %.0f V/us\n"
    (req.Adc_mdac.Mdac_stage.sr_min /. 1e6);
  (* best-of-N independent restarts, fanned out over the domain pool;
     per-attempt seeds derive from the attempt index, so the winner is
     the same for every --jobs value *)
  let t0 = Unix.gettimeofday () in
  let cancel = cancel_of_timeout timeout in
  let restarts =
    Pool.with_pool ~obs ~size:jobs (fun pool ->
        Pool.map_ordered pool
          (fun a ->
            if Cancel.cancelled cancel then None
            else
              Some
                (Synthesizer.synthesize ~seed:(Adc_numerics.Rng.mix seed a)
                   ~obs spec.Spec.process req))
          (List.init (Stdlib.max 1 attempts) Fun.id))
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let truncated = List.exists Option.is_none restarts in
  let evaluations =
    List.fold_left
      (fun acc -> function
        | Some (Ok s) -> acc + s.Synthesizer.evaluations
        | Some (Error _) | None -> acc)
      0 restarts
  in
  let best =
    List.fold_left
      (fun acc r ->
        match (acc, r) with
        | None, Some (Ok s) -> Some s
        | Some b, Some (Ok s) -> Some (Optimize.better b s)
        | _, (Some (Error _) | None) -> acc)
      None restarts
  in
  (match best with
  | None -> Printf.eprintf "synthesis failed on all %d attempts\n" attempts
  | Some sol ->
    Printf.printf
      "synthesized cell: %s, %s, best of %d attempts, %d evaluations, %.1f s\n"
      (Units.format_power sol.Synthesizer.power)
      (if sol.Synthesizer.feasible then "all specs met"
       else Printf.sprintf "violation %.3f" sol.Synthesizer.violation)
      attempts evaluations elapsed;
    List.iter (fun (k, v) -> Printf.printf "  %-10s %.4g\n" k v) sol.Synthesizer.metrics);
  finish_obs ctx;
  if truncated then finish_truncated "synthesis"

let m_arg = term_of Api.m
let bits_arg = term_of Api.bits

let synth_cmd =
  let doc = "Synthesize one MDAC amplifier with the hybrid flow." in
  Cmd.v (Cmd.info "synth" ~doc)
    Term.(const synth $ m_arg $ bits_arg $ fs_arg $ seed_arg $ attempts_arg
          $ jobs_arg $ timeout_arg $ trace_arg $ metrics_arg $ progress_arg)

(* ------------------------------------------------------------------ *)
(* behavioral *)

let behavioral k fs config_str =
  let spec = spec_of k fs in
  let config =
    match config_str with
    | Some s -> Config.of_string s
    | None -> Optimize.optimum_config (Optimize.run ~mode:`Equation spec)
  in
  let adc = Behavioral.ideal spec config in
  Printf.printf "behavioral %d-bit ADC, leading stages %s + ideal %d-bit backend\n" k
    (Config.to_string config)
    (k - Config.effective_bits config);
  let s = Metrics.static_linearity adc in
  Printf.printf "  DNL %.3f LSB, INL %.3f LSB, %d missing codes\n" s.Metrics.dnl_max
    s.Metrics.inl_max s.Metrics.missing_codes;
  let d = Metrics.dynamic_performance adc ~fs:spec.Spec.fs ~f_in:(spec.Spec.fs /. 11.0) in
  Printf.printf "  SNDR %.1f dB, ENOB %.2f bits, SFDR %.1f dB (bin %d of %d)\n"
    d.Metrics.sndr_db d.Metrics.enob d.Metrics.sfdr_db d.Metrics.signal_bin d.Metrics.n_fft

let config_arg = term_of Api.config

let behavioral_cmd =
  let doc = "Behavioral verification (digital correction, INL/DNL, ENOB)." in
  Cmd.v (Cmd.info "behavioral" ~doc) Term.(const behavioral $ k_arg $ fs_arg $ config_arg)

(* ------------------------------------------------------------------ *)
(* corners *)

let corners m bits fs seed =
  let spec = spec_of 13 fs in
  let job = { Spec.m; input_bits = bits } in
  let req = Spec.stage_requirements spec job in
  match Synthesizer.synthesize ~seed spec.Spec.process req with
  | Error e -> Printf.eprintf "synthesis failed: %s\n" e
  | Ok sol ->
    Printf.printf "corner sign-off of the synthesized %s cell (%s nominal):\n"
      (Spec.job_to_string job)
      (Units.format_power sol.Adc_synth.Synthesizer.power);
    let results =
      Adc_synth.Corner_check.check spec.Spec.process req
        sol.Adc_synth.Synthesizer.sizing
    in
    print_string (Adc_synth.Corner_check.render results)

let corners_cmd =
  let doc = "Synthesize one MDAC cell and re-verify it across process corners." in
  Cmd.v (Cmd.info "corners" ~doc) Term.(const corners $ m_arg $ bits_arg $ fs_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* montecarlo *)

let montecarlo k fs config_str trials seed trace metrics progress =
  let spec = spec_of k fs in
  let config =
    match config_str with
    | Some s -> Config.of_string s
    | None -> Optimize.optimum_config (Optimize.run ~mode:`Equation spec)
  in
  let n_sigmas = 5 in
  let ((obs, _) as ctx) =
    obs_of ~progress ~total:(trials * n_sigmas) trace metrics
  in
  (* the redundancy budget is set by the front stage actually being
     swept, not a fixed 3-bit assumption *)
  let m_front =
    match config with m :: _ -> m | [] -> invalid_arg "empty configuration"
  in
  let budget =
    Adc_mdac.Comparator.offset_budget ~vref_pp:spec.Spec.vref_pp ~m:m_front
  in
  Printf.printf
    "Monte-Carlo yield of the %d-bit %s pipeline vs comparator offsets\n\
     (redundancy budget %.0f mV; %d trials per point)\n"
    k (Config.to_string config) (budget *. 1e3) trials;
  let sweep =
    Adc_pipeline.Montecarlo.offset_sweep ~trials ~obs ~seed spec config
      ~sigmas:[ budget /. 8.0; budget /. 4.0; budget /. 2.0; budget; budget *. 1.5 ]
  in
  List.iter
    (fun (sigma, (r : Adc_pipeline.Montecarlo.report)) ->
      Printf.printf "  sigma %6.1f mV: yield %5.1f%%  mean ENOB %.2f  p05 %.2f\n"
        (sigma *. 1e3)
        (100.0 *. r.Adc_pipeline.Montecarlo.yield)
        r.Adc_pipeline.Montecarlo.enob_mean r.Adc_pipeline.Montecarlo.enob_p05)
    sweep;
  finish_obs ctx

let trials_arg = term_of Api.trials

let montecarlo_cmd =
  let doc = "Monte-Carlo yield of a configuration under comparator offsets." in
  Cmd.v (Cmd.info "montecarlo" ~doc)
    Term.(const montecarlo $ k_arg $ fs_arg $ config_arg $ trials_arg $ seed_arg
          $ trace_arg $ metrics_arg $ progress_arg)

(* ------------------------------------------------------------------ *)
(* area *)

let area k fs =
  let spec = spec_of k fs in
  let cands = Config.enumerate_leading ~k ~backend_bits:(Spec.backend_bits spec) in
  Printf.printf "estimated area of the %d-bit candidates:\n" k;
  List.iter
    (fun (a : Adc_pipeline.Area_model.config_area) ->
      Printf.printf "  %-14s %8.3f mm^2\n"
        (Config.to_string a.Adc_pipeline.Area_model.config)
        (a.Adc_pipeline.Area_model.total *. 1e6))
    (Adc_pipeline.Area_model.rank spec cands)

let area_cmd =
  let doc = "Rank the candidates by estimated silicon area." in
  Cmd.v (Cmd.info "area" ~doc) Term.(const area $ k_arg $ fs_arg)

(* ------------------------------------------------------------------ *)
(* trace: offline analysis of a recorded JSONL trace *)

let load_trace file =
  if file = "-" then Trace_reader.load_channel stdin
  else
    match Trace_reader.load_file file with
    | load -> load
    | exception Sys_error msg -> die "adcopt: cannot read trace: %s" msg

let trace_file_arg =
  let doc =
    "JSONL trace produced by --trace, or $(b,-) to read from stdin (e.g. \
     piping a live daemon's $(b,dump-trace) stream)."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let trace_summary file =
  print_string (Trace_analysis.render_summary (load_trace file))

let trace_summary_cmd =
  let doc =
    "Per-span-name self/total time table, job and trial totals, memo hit \
     rate, and reconciliation of job-span sums against the run's own \
     counters."
  in
  Cmd.v (Cmd.info "summary" ~doc) Term.(const trace_summary $ trace_file_arg)

let trace_critical_path file =
  let tree = Trace_analysis.tree_of_events (load_trace file).Trace_reader.events in
  print_string
    (Trace_analysis.render_critical_path (Trace_analysis.critical_path tree))

let trace_critical_path_cmd =
  let doc = "The latest-ending span chain — the dependency chain that set the makespan." in
  Cmd.v (Cmd.info "critical-path" ~doc)
    Term.(const trace_critical_path $ trace_file_arg)

let trace_utilization file =
  match Trace_analysis.utilization (load_trace file).Trace_reader.events with
  | Some u -> print_string (Trace_analysis.render_utilization u)
  | None ->
    die "adcopt: no pool.task spans in %s (equation-mode runs never build a pool)"
      file

let trace_utilization_cmd =
  let doc = "Per-domain busy time and a busy-fraction timeline from the pool.task spans." in
  Cmd.v (Cmd.info "utilization" ~doc)
    Term.(const trace_utilization $ trace_file_arg)

let format_arg =
  let doc =
    "Output format: $(b,chrome) (trace-event JSON for Perfetto / \
     chrome://tracing), $(b,folded) (collapsed stacks for flamegraph.pl \
     and speedscope), or $(b,prometheus) (text exposition of the metrics \
     reconstructed from the trace)."
  in
  let formats = [ ("chrome", `Chrome); ("folded", `Folded); ("prometheus", `Prometheus) ] in
  Arg.(value & opt (enum formats) `Chrome & info [ "format" ] ~docv:"FMT" ~doc)

let output_arg =
  let doc = "Write to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let trace_export format output file =
  let events = (load_trace file).Trace_reader.events in
  let payload =
    match format with
    | `Chrome -> Trace_export.chrome events
    | `Folded -> Trace_export.folded events
    | `Prometheus ->
      Trace_export.prometheus
        (Adc_obs.Metrics.snapshot (Trace_export.registry_of_trace events))
  in
  match output with
  | None -> print_string payload
  | Some path ->
    (try
       let oc = open_out path in
       output_string oc payload;
       close_out oc
     with Sys_error msg -> die "adcopt: cannot write %s: %s" path msg)

let trace_export_cmd =
  let doc = "Convert a trace to Chrome/Perfetto JSON, folded stacks, or Prometheus text." in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(const trace_export $ format_arg $ output_arg $ trace_file_arg)

let trace_cmd =
  let doc = "Analyze and export a recorded span trace (see docs/OBSERVABILITY.md)." in
  Cmd.group (Cmd.info "trace" ~doc)
    [ trace_summary_cmd; trace_critical_path_cmd; trace_utilization_cmd;
      trace_export_cmd ]

(* ------------------------------------------------------------------ *)
(* serve: the synthesis service *)

let default_socket = "/tmp/adcopt.sock"

let serve_socket_arg =
  let doc = "Unix-domain socket to listen on." in
  Arg.(value & opt string default_socket & info [ "socket" ] ~docv:"PATH" ~doc)

let listen_arg =
  let doc = "Also listen on TCP $(docv) (e.g. 127.0.0.1:7400)." in
  Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"HOST:PORT" ~doc)

let queue_depth_arg =
  let doc =
    "Admission queue bound: with $(docv) requests already waiting, new \
     work is refused immediately with an $(b,overloaded) error."
  in
  Arg.(value & opt int 64 & info [ "queue-depth" ] ~docv:"N" ~doc)

let workers_arg =
  let doc = "Request worker threads draining the admission queue." in
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc =
    "Default per-request deadline in seconds, applied to requests that \
     carry no $(b,deadline_ms) of their own."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let metrics_addr_arg =
  let doc =
    "Also listen on $(docv) for the operations plane: plain HTTP \
     $(b,GET /metrics) (live Prometheus exposition — the same text the \
     offline $(b,adcopt trace export --format prometheus) renders), \
     $(b,GET /healthz) and $(b,GET /readyz)."
  in
  Arg.(value & opt (some string) None
       & info [ "metrics-addr" ] ~docv:"HOST:PORT" ~doc)

let log_level_arg =
  let doc =
    "Daemon log verbosity on stderr: $(b,debug), $(b,info), $(b,warn), \
     $(b,error), or $(b,off)."
  in
  Arg.(value & opt string "info" & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let log_format_arg =
  let doc = "Log line format: $(b,text) or $(b,json) (one object per line)." in
  let formats = [ ("text", Adc_obs.Log.Text); ("json", Adc_obs.Log.Jsonl) ] in
  Arg.(value & opt (enum formats) Adc_obs.Log.Text
       & info [ "log-format" ] ~docv:"FMT" ~doc)

let slow_ms_arg =
  let doc =
    "Log a $(b,slow request) warning for any request whose computation \
     exceeds $(docv) milliseconds."
  in
  Arg.(value & opt (some float) (Some 1000.0)
       & info [ "slow-ms" ] ~docv:"MS" ~doc)

let flight_capacity_arg =
  let doc =
    "Flight-recorder size: keep the most recent $(docv) finished spans \
     in memory for $(b,dump-trace) / SIGUSR1 (0 disables)."
  in
  Arg.(value & opt int 8192 & info [ "flight-capacity" ] ~docv:"N" ~doc)

let flight_dump_arg =
  let doc =
    "Where SIGUSR1 writes the flight-recorder JSONL (default: the \
     socket path + $(b,.flight.jsonl))."
  in
  Arg.(value & opt (some string) None
       & info [ "flight-dump" ] ~docv:"FILE" ~doc)

let store_max_entries_arg =
  let doc =
    "Cap the $(b,--store) directory at $(docv) entries with an \
     LRU-by-mtime sweep (at startup and after each write), so \
     cluster-replicated hot cells cannot grow the store without bound."
  in
  Arg.(value & opt (some int) None
       & info [ "store-max-entries" ] ~docv:"N" ~doc)

let node_id_arg =
  let doc =
    "This process's cluster identity, stamped on every log line \
     (alongside the req_id) and surfaced in the $(b,stats) payload so \
     merged fleet logs and aggregated stats stay attributable. Default: \
     the socket file's basename."
  in
  Arg.(value & opt (some string) None & info [ "node-id" ] ~docv:"ID" ~doc)

let serve socket listen queue_depth workers jobs store store_max_entries
    deadline trace metrics metrics_addr log_level log_format slow_ms
    flight_capacity flight_dump node_id =
  let jobs = resolve_jobs jobs in
  let tcp = Option.map host_port_of_string listen in
  let node_id =
    match node_id with Some n -> n | None -> Filename.basename socket
  in
  let log =
    if log_level = "off" then Adc_obs.Log.null
    else
      match Adc_obs.Log.level_of_string log_level with
      | Some level -> Adc_obs.Log.create ~level ~format:log_format ~node_id ()
      | None -> die "adcopt serve: unknown --log-level %S" log_level
  in
  (* the daemon's registry is always live — the ops plane scrapes it;
     --metrics additionally prints the table at exit as before *)
  let obs =
    try Adc_obs.create ?trace ~metrics:true ()
    with Sys_error msg -> die "adcopt: cannot open trace file: %s" msg
  in
  let cfg =
    {
      Server.socket_path = Some socket;
      tcp;
      queue_depth;
      workers;
      jobs;
      store_dir = store;
      store_max_entries;
      default_deadline_s = deadline;
      obs;
      metrics_addr = Option.map host_port_of_string metrics_addr;
      log;
      slow_ms;
      flight_capacity;
      node_id = Some node_id;
    }
  in
  let srv =
    try Server.create cfg
    with Unix.Unix_error (e, _, arg) ->
      die "adcopt serve: cannot listen (%s: %s)" arg (Unix.error_message e)
  in
  (* SIGTERM/SIGINT begin the graceful drain: stop accepting, finish
     queued and in-flight work, flush, then Server.run returns *)
  let request_stop _ = Server.stop srv in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* SIGUSR1 dumps the flight recorder without stopping anything *)
  let dump_path =
    match flight_dump with Some p -> p | None -> socket ^ ".flight.jsonl"
  in
  let dump_flight _ =
    match Server.flight_events srv with
    | None ->
      Adc_obs.Log.warn log
        "SIGUSR1 ignored: flight recorder disabled (--flight-capacity 0)"
    | Some (events, dropped) -> (
      try
        let oc = open_out dump_path in
        List.iter
          (fun e ->
            output_string oc (Adc_obs.Sink.event_to_json e);
            output_char oc '\n')
          events;
        close_out oc;
        Adc_obs.Log.info log
          ~fields:
            [
              ("events", Adc_obs.Sink.Int (List.length events));
              ("dropped", Adc_obs.Sink.Int dropped);
              ("path", Adc_obs.Sink.String dump_path);
            ]
          "flight recorder dumped"
      with Sys_error msg ->
        Adc_obs.Log.error log ("flight dump failed: " ^ msg))
  in
  Sys.set_signal Sys.sigusr1 (Sys.Signal_handle dump_flight);
  Adc_obs.Log.info log
    ~fields:
      ([
         ("socket", Adc_obs.Sink.String socket);
         ("workers", Adc_obs.Sink.Int workers);
         ("jobs", Adc_obs.Sink.Int jobs);
       ]
      @ (match (tcp, Server.tcp_port srv) with
        | Some (h, _), Some p ->
          [ ("tcp", Adc_obs.Sink.String (Printf.sprintf "%s:%d" h p)) ]
        | _ -> [])
      @ (match (cfg.Server.metrics_addr, Server.metrics_port srv) with
        | Some (h, _), Some p ->
          [ ("metrics", Adc_obs.Sink.String (Printf.sprintf "%s:%d" h p)) ]
        | _ -> [])
      @ match store with
        | Some d -> [ ("store", Adc_obs.Sink.String d) ]
        | None -> [])
    "listening";
  Server.run srv;
  Adc_obs.Log.info log "drained, bye";
  if metrics then prerr_string (Adc_obs.Metrics.render obs.Adc_obs.metrics);
  Adc_obs.close obs;
  exit 0

let serve_cmd =
  let doc =
    "Serve synthesis requests over a socket (newline-delimited JSON; see \
     docs/SERVER.md). Results are deterministic and shared: repeated \
     requests replay from the in-memory cache or the $(b,--store) \
     directory byte-identically. $(b,--metrics-addr) adds a live \
     Prometheus/health HTTP listener; the flight recorder keeps the \
     last spans in memory for the $(b,dump-trace) verb and SIGUSR1."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const serve $ serve_socket_arg $ listen_arg $ queue_depth_arg
          $ workers_arg $ jobs_arg $ store_arg $ store_max_entries_arg
          $ deadline_arg $ trace_arg $ metrics_arg $ metrics_addr_arg
          $ log_level_arg $ log_format_arg $ slow_ms_arg $ flight_capacity_arg
          $ flight_dump_arg $ node_id_arg)

(* ------------------------------------------------------------------ *)
(* call: one request against a running daemon *)

let connect_arg =
  let doc = "Connect over TCP to $(docv) instead of the Unix socket." in
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"HOST:PORT" ~doc)

let extract_arg =
  let doc =
    "Print only this response field (canonical JSON). Dotted paths \
     descend into nested objects and arrays: $(b,--extract result) of a \
     served $(b,optimize) is byte-identical to $(b,adcopt optimize \
     --json), and $(b,--extract result.p_total) or \
     $(b,--extract result.runs.0) reach inside it. On a streaming verb \
     the path applies to every line, so $(b,--extract result) of \
     $(b,dump-trace) emits plain trace JSONL ready for \
     $(b,adcopt trace summary -)."
  in
  Arg.(value & opt (some string) None & info [ "extract" ] ~docv:"PATH" ~doc)

let request_json_arg =
  let doc = "The request object, e.g. '{\"verb\":\"optimize\",\"k\":12}'." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"JSON" ~doc)

let connect_retries_arg =
  let doc =
    "Retry a failed connect up to $(docv) more times with exponential \
     backoff (50 ms doubling, capped at 1 s) — lets scripts start a \
     daemon and call it without sleep loops."
  in
  Arg.(value & opt int 0 & info [ "connect-retries" ] ~docv:"N" ~doc)

let call socket connect extract connect_retries request =
  let request =
    match Json.parse request with
    | json -> json
    | exception Json.Parse_error msg -> die "adcopt call: bad request: %s" msg
  in
  (* stamp the protocol version this client speaks, unless the caller
     pinned one explicitly (the version-mismatch CI check does) *)
  let request =
    match request with
    | Json.Obj fields when not (List.mem_assoc "version" fields) ->
      Json.Obj (fields @ [ ("version", Json.Int Api.protocol_version) ])
    | _ -> request
  in
  let connect_once () =
    match connect with
    | Some hp -> let h, p = host_port_of_string hp in Client.connect_tcp h p
    | None -> Client.connect_unix socket
  in
  (* connect errors (refused, missing socket, timed out) are the
     retryable family; anything else is a real bug and dies at once *)
  let rec connect_retrying attempt =
    match connect_once () with
    | client -> client
    | exception Unix.Unix_error (e, _, _) ->
      if attempt >= connect_retries then
        die "adcopt call: cannot connect: %s" (Unix.error_message e)
      else begin
        let backoff_ms = min (50. *. (2. ** float_of_int attempt)) 1000. in
        Unix.sleepf (backoff_ms /. 1e3);
        connect_retrying (attempt + 1)
      end
  in
  let client = connect_retrying 0 in
  let response =
    (* non-final lines (a streaming verb's incremental results) print as
       they arrive; --extract applies to each of them as well as to the
       final line, so e.g. [--extract result] of a dump-trace turns the
       stream into plain trace JSONL. A point line lacking the path is
       skipped silently (only the final line must carry it). *)
    match
      Client.request_stream client request ~on_line:(fun line ->
          match extract with
          | None -> print_endline (Json.to_string line)
          | Some path -> (
            match Json.member_path path line with
            | Some v -> print_endline (Json.to_string v)
            | None -> ()))
    with
    | r -> r
    | exception End_of_file -> die "adcopt call: server closed the connection"
  in
  Client.close client;
  (match extract with
  | None -> print_endline (Json.to_string response)
  | Some path -> (
    match Json.member_path path response with
    | Some v -> print_endline (Json.to_string v)
    | None -> die "adcopt call: no %S field in the response" path));
  match Json.member "ok" response with
  | Some (Json.Bool false) ->
    (match Json.member "error" response with
    | Some (Json.String "unsupported_version") ->
      let pp = function
        | Some (Json.Int v) -> string_of_int v
        | _ -> "?"
      in
      Printf.eprintf
        "adcopt call: protocol version mismatch — the request spoke version \
         %s, the daemon speaks %s; upgrade whichever is older\n"
        (pp (Json.member "version" request))
        (pp (Json.member "version" response))
    | _ -> ());
    exit 3
  | _ -> ()

let call_cmd =
  let doc =
    "Send one JSON request to a running $(b,adcopt serve) and print the \
     response (exit 3 when the daemon answers an error). A streaming \
     verb's incremental lines print as they arrive; $(b,--extract) \
     applies to the final line."
  in
  Cmd.v (Cmd.info "call" ~doc)
    Term.(const call $ serve_socket_arg $ connect_arg $ extract_arg
          $ connect_retries_arg $ request_json_arg)

(* ------------------------------------------------------------------ *)
(* route: the cluster front door *)

let backends_arg =
  let doc =
    "Comma-separated backend addresses, each a running $(b,adcopt serve): \
     a Unix socket path or $(b,host:port)."
  in
  Arg.(required
       & opt (some string) None
       & info [ "backends" ] ~docv:"A,B,..." ~doc)

let route_socket_arg =
  let doc = "Unix-domain front socket to listen on." in
  Arg.(value
       & opt string "/tmp/adcopt-route.sock"
       & info [ "socket" ] ~docv:"PATH" ~doc)

let vnodes_arg =
  let doc =
    "Virtual nodes per backend on the consistent-hash ring: more points \
     flatten the keyspace split at the cost of a larger ring."
  in
  Arg.(value & opt int 160 & info [ "vnodes" ] ~docv:"N" ~doc)

let replicas_arg =
  let doc =
    "Replica set size R: a freshly computed result is asynchronously \
     offered to the key's R-1 ring successors ($(b,store-put), \
     digest-verified). 1 disables replication."
  in
  Arg.(value & opt int 2 & info [ "replicas" ] ~docv:"R" ~doc)

let retries_arg =
  let doc =
    "Extra backends tried per forward after the key's owner, walking the \
     ring successors with exponential backoff deducted from the \
     request's remaining $(b,deadline_ms)."
  in
  Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N" ~doc)

let connect_timeout_arg =
  let doc = "Per-attempt backend connect budget in milliseconds." in
  Arg.(value & opt int 1000 & info [ "connect-timeout-ms" ] ~docv:"MS" ~doc)

let probe_period_arg =
  let doc =
    "Background health-probe cadence in seconds: each backend is pinged \
     and marked up/down on this period. 0 disables the prober (health \
     then tracks only request-level outcomes)."
  in
  Arg.(value & opt float 2.0 & info [ "probe-period" ] ~docv:"SECONDS" ~doc)

let no_replication_arg =
  let doc = "Do not offer finished results to ring replicas." in
  Arg.(value & flag & info [ "no-replication" ] ~doc)

let no_donation_arg =
  let doc = "Do not broker peer warm-start donation." in
  Arg.(value & flag & info [ "no-donation" ] ~doc)

let route backends socket listen vnodes replicas retries connect_timeout_ms
    probe_period no_replication no_donation metrics_addr log_level log_format
    node_id =
  let backends =
    String.split_on_char ',' backends
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if backends = [] then die "adcopt route: --backends names no backend";
  let node_id =
    match node_id with Some n -> n | None -> Filename.basename socket
  in
  let log =
    if log_level = "off" then Adc_obs.Log.null
    else
      match Adc_obs.Log.level_of_string log_level with
      | Some level -> Adc_obs.Log.create ~level ~format:log_format ~node_id ()
      | None -> die "adcopt route: unknown --log-level %S" log_level
  in
  let obs = Adc_obs.create ~metrics:true () in
  let cfg =
    {
      Router.backends;
      socket_path = Some socket;
      tcp = Option.map host_port_of_string listen;
      vnodes;
      replicas;
      retries;
      connect_timeout_ms;
      probe_period_s = probe_period;
      replication = not no_replication;
      donation = not no_donation;
      metrics_addr = Option.map host_port_of_string metrics_addr;
      obs;
      log;
      node_id = Some node_id;
    }
  in
  let router =
    try Router.create cfg with
    | Invalid_argument msg -> die "adcopt route: %s" msg
    | Unix.Unix_error (e, _, arg) ->
      die "adcopt route: cannot listen (%s: %s)" arg (Unix.error_message e)
  in
  let request_stop _ = Router.stop router in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Adc_obs.Log.info log
    ~fields:
      ([
         ("socket", Adc_obs.Sink.String socket);
         ("backends", Adc_obs.Sink.Int (List.length backends));
         ("vnodes", Adc_obs.Sink.Int vnodes);
         ("replicas", Adc_obs.Sink.Int replicas);
       ]
      @ (match (cfg.Router.tcp, Router.tcp_port router) with
        | Some (h, _), Some p ->
          [ ("tcp", Adc_obs.Sink.String (Printf.sprintf "%s:%d" h p)) ]
        | _ -> [])
      @
      match (cfg.Router.metrics_addr, Router.metrics_port router) with
      | Some (h, _), Some p ->
        [ ("metrics", Adc_obs.Sink.String (Printf.sprintf "%s:%d" h p)) ]
      | _ -> [])
    "routing";
  Router.run router;
  Adc_obs.Log.info log "drained, bye";
  Adc_obs.close obs;
  exit 0

let route_cmd =
  let doc =
    "Front a fleet of $(b,adcopt serve) backends with one socket speaking \
     the same newline-JSON protocol (see docs/CLUSTER.md). Requests are \
     consistent-hashed onto the backend that caches their key; $(b,batch) \
     and $(b,pareto) fan out per owner and reassemble byte-identically; a \
     dead backend's keys re-route to its ring successor; finished results \
     replicate to ring replicas and converged synthesis lineages are \
     donated peer-to-peer for warm starts."
  in
  Cmd.v (Cmd.info "route" ~doc)
    Term.(const route $ backends_arg $ route_socket_arg $ listen_arg
          $ vnodes_arg $ replicas_arg $ retries_arg $ connect_timeout_arg
          $ probe_period_arg $ no_replication_arg $ no_donation_arg
          $ metrics_addr_arg $ log_level_arg $ log_format_arg $ node_id_arg)

(* ------------------------------------------------------------------ *)
(* extract: reach into a JSON document on stdin *)

let extract path =
  let input = In_channel.input_all stdin in
  match Json.parse input with
  | exception Json.Parse_error msg -> die "adcopt extract: malformed JSON: %s" msg
  | parsed -> (
    match Json.member_path path parsed with
    | Some v -> print_endline (Json.to_string v)
    | None -> die "adcopt extract: no value at path %S" path)

let extract_path_arg =
  let doc =
    "Dotted path into the document: name segments descend into objects, \
     digit segments index arrays, e.g. $(b,optimize) or $(b,grid.0.fom)."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH" ~doc)

let extract_cmd =
  let doc =
    "Read one JSON document from stdin and print the value at $(b,PATH) \
     as canonical JSON. Unlike jq, the output is the repo's own \
     canonical serialization — the very bytes the codec produced — so \
     extracted sub-payloads can be $(b,cmp)'d against other adcopt \
     output (CI diffs a pareto point's $(b,optimize) object against \
     $(b,adcopt optimize --json) this way)."
  in
  Cmd.v (Cmd.info "extract" ~doc) Term.(const extract $ extract_path_arg)

(* ------------------------------------------------------------------ *)
(* top level *)

let main_cmd =
  let doc = "designer-driven topology optimization for pipelined ADCs (DATE 2005)" in
  let info = Cmd.info "adcopt" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ enumerate_cmd; optimize_cmd; sweep_cmd; batch_cmd; pareto_cmd;
      synth_cmd; behavioral_cmd; corners_cmd; montecarlo_cmd; area_cmd;
      trace_cmd; serve_cmd; route_cmd; call_cmd; extract_cmd ]

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning);
  exit (Cmd.eval main_cmd)
